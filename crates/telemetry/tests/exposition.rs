//! Shape and equivalence tests for the exposition layer: every Prometheus
//! family must carry `# HELP` / `# TYPE` headers, the histogram `_max` line
//! must be the exact observed maximum (not a bucket bound), and merging a
//! ring of per-second delta snapshots must reproduce the flat cumulative
//! snapshot (the property `GET /stats?window=...` relies on).

use proptest::collection::vec;
use proptest::prelude::*;
use tagging_telemetry::{Registry, WindowRing};

/// Builds a registry exercising every sample kind: plain and labeled
/// counters, a gauge, and two histogram families.
fn sample_registry() -> Registry {
    let registry = Registry::new();
    let hits = registry.counter("req_total", &[("route", "batch")], "requests by route");
    let misses = registry.counter("req_total", &[("route", "report")], "requests by route");
    let depth = registry.gauge("queue_depth", &[], "queued jobs");
    let lat = registry.histogram("lat_us", &[], "handler latency");
    let wait = registry.histogram("wait_us", &[], "queue wait");
    hits.add(3);
    misses.inc();
    depth.set(7);
    lat.record(1000);
    wait.record(42);
    registry
}

/// Every sample line's family must be preceded by exactly one `# HELP` and
/// one `# TYPE` header for that family, in that order, before any of the
/// family's samples — the shape Prometheus scrapers and promtool expect.
#[test]
fn every_family_has_help_and_type_headers() {
    let text = sample_registry().snapshot().to_prometheus();
    let mut seen_help: Vec<String> = Vec::new();
    let mut seen_type: Vec<String> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let family = rest.split(' ').next().unwrap().to_string();
            assert!(
                !seen_help.contains(&family),
                "duplicate # HELP for {family}"
            );
            seen_help.push(family);
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let family = rest.split(' ').next().unwrap().to_string();
            assert!(
                !seen_type.contains(&family),
                "duplicate # TYPE for {family}"
            );
            assert_eq!(
                seen_help.last(),
                Some(&family),
                "# TYPE {family} must directly follow its # HELP"
            );
            seen_type.push(family);
        } else if !line.is_empty() {
            // A sample line: `family`, `family{...}`, or a histogram-derived
            // `family_bucket/_sum/_count/_max` series.
            let series = line
                .split([' ', '{'])
                .next()
                .expect("sample line has a name");
            let family = ["_bucket", "_sum", "_count", "_max"]
                .iter()
                .find_map(|suffix| series.strip_suffix(suffix))
                .unwrap_or(series);
            assert!(
                seen_type.iter().any(|f| f == family),
                "sample `{line}` appears before its # TYPE header"
            );
        }
    }
    // Both kinds of headers exist for every family that rendered samples.
    assert_eq!(seen_help, seen_type, "HELP and TYPE sets must match");
    if tagging_telemetry::enabled() {
        for family in ["req_total", "queue_depth", "lat_us", "wait_us"] {
            assert!(
                seen_type.iter().any(|f| f == family),
                "family {family} missing from exposition"
            );
        }
    }
}

/// The `_max` line must report the exact observed maximum. Recording 1000
/// lands in the (512, 1024] bucket whose upper bound is 1023 — a rendering
/// that derived max from bucket bounds would print 1023, not 1000.
#[test]
fn histogram_max_is_exact_not_a_bucket_bound() {
    if !tagging_telemetry::enabled() {
        return;
    }
    let registry = Registry::new();
    let lat = registry.histogram("probe_us", &[], "probe latency");
    lat.record(1000);
    lat.record(17);
    let text = registry.snapshot().to_prometheus();
    assert!(
        text.contains("probe_us_max 1000"),
        "expected the true max 1000, got:\n{text}"
    );
    assert!(
        !text.contains("probe_us_max 1023"),
        "max must not degrade to the bucket upper bound:\n{text}"
    );
}

proptest! {
    /// Rotating a cumulative registry into per-second delta slots and
    /// merging the whole ring back must reproduce the flat cumulative
    /// snapshot exactly — counters sum, histograms (including `_max`)
    /// merge, gauges resolve newest-wins to the current value. Rendering
    /// both sides to Prometheus text compares every family in one shot.
    #[test]
    fn merged_window_ring_equals_flat_snapshot(
        seconds in vec(
            (vec(0u64..1_000_000, 0..40), 0u64..100, -50i64..50),
            1..8,
        ),
    ) {
        let registry = Registry::new();
        let hits = registry.counter("w_req_total", &[("route", "batch")], "req");
        let depth = registry.gauge("w_depth", &[], "depth");
        let lat = registry.histogram("w_lat_us", &[], "latency");
        let mut ring = WindowRing::new(seconds.len(), 1_000);
        for (values, increments, level) in &seconds {
            for &v in values {
                lat.record(v);
            }
            hits.add(*increments);
            depth.set(*level);
            ring.rotate(registry.snapshot());
        }
        let (merged, covered) = ring.window(seconds.len());
        prop_assert_eq!(covered, seconds.len());
        prop_assert_eq!(
            merged.to_prometheus(),
            registry.snapshot().to_prometheus()
        );
    }
}
