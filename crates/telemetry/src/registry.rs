//! Named metric families with labels, and snapshot/rendering.
//!
//! The registry is a lock-protected map from `(name, labels)` to a shared
//! metric handle. Lookups are get-or-create and return `Arc`s, so callers on
//! hot paths resolve their handles once at construction and never touch the
//! lock again; the lock is only contended by cold-path lookups (e.g.
//! [`crate::Span::enter`]) and by scrapes.

use crate::histogram::{bucket_upper, Histogram, HistogramSnapshot};
use crate::metrics::{Counter, Gauge};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};

/// Normalize a metric or span name to Prometheus' `[a-zA-Z0-9_:]` alphabet:
/// `wal.append` and `wal-append` both become `wal_append`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Render a label set as the Prometheus selector body `k="v",k2="v2"`
/// (empty string for no labels). Values are escaped per the exposition
/// format. Label order is preserved as given, which keeps registration and
/// rendering deterministic.
fn render_labels(labels: &[(String, String)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}=\"", sanitize(k));
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                _ => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    labels: Vec<(String, String)>,
    help: String,
    metric: Metric,
}

/// A collection of named metric families. Most code records into the
/// process-wide [`global()`](crate::global) registry; independent instances
/// exist mainly so tests can assert on a clean slate.
#[derive(Default)]
pub struct Registry {
    // Keyed by (sanitized family name, rendered label selector) so snapshot
    // iteration — and therefore /metrics output — is deterministic.
    entries: Mutex<BTreeMap<(String, String), Entry>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<(String, String), Entry>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn get_or_insert<T, F, G>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: F,
        extract: G,
    ) -> Arc<T>
    where
        F: FnOnce() -> Metric,
        G: FnOnce(&Metric) -> Option<Arc<T>>,
    {
        let key = (
            sanitize(name),
            render_labels(
                &labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect::<Vec<_>>(),
            ),
        );
        let mut entries = self.lock();
        let entry = entries.entry(key).or_insert_with(|| Entry {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            help: help.to_string(),
            metric: make(),
        });
        extract(&entry.metric).unwrap_or_else(|| {
            panic!(
                "metric `{name}` already registered as a {}",
                entry.metric.kind()
            )
        })
    }

    /// Get or create the counter `name` with the given label set.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            labels,
            help,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Get or create the gauge `name` with the given label set.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            labels,
            help,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Get or create the histogram `name` with the given label set.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            labels,
            help,
            || Metric::Histogram(Arc::new(Histogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Start timing a named span: `span("wal.append")` records the elapsed
    /// microseconds into the histogram `wal_append_us` when the returned
    /// guard drops. This takes the registry lock once per call — fine for
    /// per-request and coarser scopes; per-item hot loops should hold an
    /// `Arc<Histogram>` and use [`Histogram::start_timer`] directly.
    pub fn span(&self, name: &str) -> crate::Span {
        let histogram = self.histogram(
            &format!("{}_us", sanitize(name)),
            &[],
            "Span duration in microseconds",
        );
        crate::Span::over(histogram)
    }

    /// Snapshot every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let entries = self.lock();
        let mut snap = RegistrySnapshot::default();
        for ((name, _), entry) in entries.iter() {
            match &entry.metric {
                Metric::Counter(c) => snap.counters.push(CounterSample {
                    name: name.clone(),
                    labels: entry.labels.clone(),
                    help: entry.help.clone(),
                    value: c.get(),
                }),
                Metric::Gauge(g) => snap.gauges.push(GaugeSample {
                    name: name.clone(),
                    labels: entry.labels.clone(),
                    help: entry.help.clone(),
                    value: g.get(),
                }),
                Metric::Histogram(h) => snap.histograms.push(HistogramSample {
                    name: name.clone(),
                    labels: entry.labels.clone(),
                    help: entry.help.clone(),
                    snapshot: h.snapshot(),
                }),
            }
        }
        snap
    }
}

/// One counter's value at snapshot time.
#[derive(Clone, Debug)]
pub struct CounterSample {
    /// Sanitized family name.
    pub name: String,
    /// Label key/value pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// Help text supplied at registration.
    pub help: String,
    /// Counter total.
    pub value: u64,
}

/// One gauge's value at snapshot time.
#[derive(Clone, Debug)]
pub struct GaugeSample {
    /// Sanitized family name.
    pub name: String,
    /// Label key/value pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// Help text supplied at registration.
    pub help: String,
    /// Gauge value.
    pub value: i64,
}

/// One histogram's merged shards at snapshot time.
#[derive(Clone, Debug)]
pub struct HistogramSample {
    /// Sanitized family name.
    pub name: String,
    /// Label key/value pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// Help text supplied at registration.
    pub help: String,
    /// Merged bucket counts, sum and max.
    pub snapshot: HistogramSnapshot,
}

/// A point-in-time view of a whole [`Registry`], renderable as Prometheus
/// text exposition via [`RegistrySnapshot::to_prometheus`].
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    /// All counters, sorted by (name, labels).
    pub counters: Vec<CounterSample>,
    /// All gauges, sorted by (name, labels).
    pub gauges: Vec<GaugeSample>,
    /// All histograms, sorted by (name, labels).
    pub histograms: Vec<HistogramSample>,
}

impl RegistrySnapshot {
    /// Render in Prometheus text exposition format (version 0.0.4).
    ///
    /// Histograms emit cumulative `_bucket{le="..."}` lines up to the
    /// highest non-empty bucket plus `le="+Inf"`, then `_sum`, `_count`,
    /// and a non-standard `_max` gauge line carrying the exact observed
    /// maximum (bucket bounds alone only bound it).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        let mut header = |out: &mut String, name: &str, kind: &str, help: &str| {
            if last_family != name {
                let _ = writeln!(out, "# HELP {name} {help}");
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_family = name.to_string();
            }
        };
        for c in &self.counters {
            header(&mut out, &c.name, "counter", &c.help);
            let _ = writeln!(out, "{}{} {}", c.name, selector(&c.labels), c.value);
        }
        let mut last_family = String::new();
        let mut header = |out: &mut String, name: &str, kind: &str, help: &str| {
            if last_family != name {
                let _ = writeln!(out, "# HELP {name} {help}");
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_family = name.to_string();
            }
        };
        for g in &self.gauges {
            header(&mut out, &g.name, "gauge", &g.help);
            let _ = writeln!(out, "{}{} {}", g.name, selector(&g.labels), g.value);
        }
        let mut last_family = String::new();
        for h in &self.histograms {
            if last_family != h.name {
                let _ = writeln!(out, "# HELP {} {}", h.name, h.help);
                let _ = writeln!(out, "# TYPE {} histogram", h.name);
                last_family = h.name.clone();
            }
            let snap = &h.snapshot;
            let count = snap.count();
            let top = snap.buckets.iter().rposition(|&b| b != 0).unwrap_or(0);
            let mut cumulative = 0u64;
            for (i, &b) in snap.buckets.iter().enumerate().take(top + 1) {
                cumulative = cumulative.wrapping_add(b);
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    h.name,
                    with_le(&h.labels, &bucket_upper(i).to_string()),
                    cumulative
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                h.name,
                with_le(&h.labels, "+Inf"),
                count
            );
            let _ = writeln!(out, "{}_sum{} {}", h.name, selector(&h.labels), snap.sum);
            let _ = writeln!(out, "{}_count{} {}", h.name, selector(&h.labels), count);
            let _ = writeln!(out, "{}_max{} {}", h.name, selector(&h.labels), snap.max);
        }
        out
    }
}

fn selector(labels: &[(String, String)]) -> String {
    let body = render_labels(labels);
    if body.is_empty() {
        String::new()
    } else {
        format!("{{{body}}}")
    }
}

fn with_le(labels: &[(String, String)], le: &str) -> String {
    let body = render_labels(labels);
    if body.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{{{body},le=\"{le}\"}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("x_total", &[("route", "a")], "help");
        let b = r.counter("x_total", &[("route", "a")], "help");
        a.inc();
        if crate::enabled() {
            assert_eq!(b.get(), 1);
        }
        let other = r.counter("x_total", &[("route", "b")], "help");
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("dual", &[], "help");
        r.gauge("dual", &[], "help");
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter("req_total", &[("route", "ping")], "Requests")
            .add(3);
        r.gauge("conns", &[], "Connections").set(2);
        r.histogram("lat_us", &[], "Latency").record(5);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("# TYPE conns gauge"));
        assert!(text.contains("# TYPE lat_us histogram"));
        if crate::enabled() {
            assert!(text.contains("req_total{route=\"ping\"} 3"));
            assert!(text.contains("conns 2"));
            assert!(text.contains("lat_us_bucket{le=\"7\"} 1"), "{text}");
            assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 1"));
            assert!(text.contains("lat_us_sum 5"));
            assert!(text.contains("lat_us_count 1"));
            assert!(text.contains("lat_us_max 5"));
        }
    }

    #[test]
    fn sanitizes_names() {
        let r = Registry::new();
        r.counter("wal.append-bytes", &[], "bytes").add(1);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].name, "wal_append_bytes");
    }
}
