//! Event-loop watchdog: heartbeat tracking with stall counters and gauges.
//!
//! The server's readiness sweep is a single thread; if it stalls (a long
//! sweep, a blocking syscall that should not block, scheduler starvation),
//! every connection stalls with it — and the stall is invisible to request
//! latency histograms because no request completes *during* it. The
//! watchdog closes that gap: the swept loop calls [`Watchdog::beat`] every
//! iteration, and a background task calls [`Watchdog::check`] on its own
//! cadence. A gap above budget is counted and surfaced as gauges, so
//! `/stats` and `/metrics` show "the event loop stalled, N times, worst
//! case M µs" even when no request was in flight to observe it.
//!
//! The metric families, under a caller-chosen prefix (the server uses
//! `server_loop`):
//!
//! | family | kind | meaning |
//! |---|---|---|
//! | `<prefix>_stalls_total` | counter | heartbeat gaps that exceeded budget |
//! | `<prefix>_last_stall_us` | gauge | most recent over-budget gap |
//! | `<prefix>_max_gap_us` | gauge | worst gap ever observed (stall or not) |
//! | `<prefix>_heartbeats_total` | counter | total beats (liveness signal) |
//!
//! With the `noop` feature the counters and gauges record nothing, like the
//! rest of the crate; beat/check bookkeeping stays (it is two relaxed
//! atomic operations) so control flow is identical.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::metrics::{Counter, Gauge};
use crate::trace::ts_us;

/// Heartbeat tracker for a loop that must never stall. See the module docs.
#[derive(Debug)]
pub struct Watchdog {
    /// `ts_us` of the most recent beat (0 before the first).
    last_beat_us: AtomicU64,
    /// Worst gap ever observed by `check`, in µs.
    max_gap_us: AtomicU64,
    stalls: Arc<Counter>,
    heartbeats: Arc<Counter>,
    last_stall_gauge: Arc<Gauge>,
    max_gap_gauge: Arc<Gauge>,
}

impl Watchdog {
    /// A watchdog registering its metric families under `prefix` in the
    /// [global registry](crate::global).
    pub fn new(prefix: &str) -> Self {
        let registry = crate::global();
        Self {
            last_beat_us: AtomicU64::new(0),
            max_gap_us: AtomicU64::new(0),
            stalls: registry.counter(
                &format!("{prefix}_stalls_total"),
                &[],
                "Heartbeat gaps that exceeded the stall budget",
            ),
            heartbeats: registry.counter(
                &format!("{prefix}_heartbeats_total"),
                &[],
                "Heartbeats observed (liveness signal)",
            ),
            last_stall_gauge: registry.gauge(
                &format!("{prefix}_last_stall_us"),
                &[],
                "Most recent over-budget heartbeat gap in microseconds",
            ),
            max_gap_gauge: registry.gauge(
                &format!("{prefix}_max_gap_us"),
                &[],
                "Worst heartbeat gap ever observed in microseconds",
            ),
        }
    }

    /// Record one heartbeat. Called by the watched loop every iteration.
    #[inline]
    pub fn beat(&self) {
        self.last_beat_us.store(ts_us(), Ordering::Relaxed);
        self.heartbeats.inc();
    }

    /// Measure the gap since the last beat and record a stall when it
    /// exceeds `budget_us`. Returns the over-budget gap, if any. Called by
    /// the background watchdog task; before the first beat it returns `None`
    /// (the loop has not started — that is a startup race, not a stall).
    pub fn check(&self, budget_us: u64) -> Option<u64> {
        let last = self.last_beat_us.load(Ordering::Relaxed);
        if last == 0 {
            return None;
        }
        let gap = ts_us().saturating_sub(last);
        self.max_gap_us.fetch_max(gap, Ordering::Relaxed);
        self.max_gap_gauge
            .set(i64::try_from(self.max_gap_us.load(Ordering::Relaxed)).unwrap_or(i64::MAX));
        if gap > budget_us {
            self.stalls.inc();
            self.last_stall_gauge
                .set(i64::try_from(gap).unwrap_or(i64::MAX));
            Some(gap)
        } else {
            None
        }
    }

    /// Record an externally measured stall of `gap_us` — e.g. a sweep whose
    /// own duration ran over budget, measured by the watched loop itself
    /// rather than inferred from heartbeat gaps.
    pub fn note_stall(&self, gap_us: u64) {
        self.max_gap_us.fetch_max(gap_us, Ordering::Relaxed);
        self.max_gap_gauge
            .set(i64::try_from(self.max_gap_us.load(Ordering::Relaxed)).unwrap_or(i64::MAX));
        self.stalls.inc();
        self.last_stall_gauge
            .set(i64::try_from(gap_us).unwrap_or(i64::MAX));
    }

    /// Total stalls counted so far (0 under the `noop` feature).
    pub fn stall_count(&self) -> u64 {
        self.stalls.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_stall_before_the_first_beat() {
        let watchdog = Watchdog::new("test_wd_startup");
        assert_eq!(watchdog.check(0), None);
    }

    #[test]
    fn gap_over_budget_counts_a_stall() {
        let watchdog = Watchdog::new("test_wd_stall");
        watchdog.beat();
        std::thread::sleep(std::time::Duration::from_millis(5));
        // 5ms gap against a 1µs budget must register.
        let gap = watchdog.check(1).expect("gap exceeds budget");
        assert!(gap >= 1_000, "gap {gap}µs");
        if crate::enabled() {
            assert_eq!(watchdog.stall_count(), 1);
        }
        // A fresh beat resets the gap below any sane budget.
        watchdog.beat();
        assert_eq!(watchdog.check(1_000_000), None);
        if crate::enabled() {
            assert_eq!(watchdog.stall_count(), 1);
        }
    }
}
