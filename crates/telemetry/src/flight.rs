//! The flight recorder: a fixed-capacity concurrent ring of structured
//! per-request records.
//!
//! Aggregates answer "how fast on average"; debugging a production incident
//! needs "show me the last 256 requests and what they touched". A
//! [`FlightRecorder`] keeps exactly that: every completed request pushes one
//! [`RequestRecord`] (request id, route, session, status, latency, queue
//! wait), overwriting the oldest once the ring is full. The server hosts two
//! rings — one recording everything, one retaining only requests over a
//! configurable latency threshold (the *slow ring*), so a burst of fast
//! traffic cannot evict the interesting outliers.
//!
//! Recording is designed for the worker hot path: a single atomic
//! `fetch_add` claims a slot, and each slot has its own mutex, so concurrent
//! writers (different workers) almost never contend — they only collide when
//! two claims wrap onto the same slot simultaneously, or with a reader.
//! Reads ([`FlightRecorder::snapshot`]) walk every slot and are scrape-path
//! only.
//!
//! With the `noop` cargo feature, [`FlightRecorder::record`] compiles to
//! nothing and snapshots are empty, like every other recording primitive in
//! this crate.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::sync_lock;

/// One completed request, as the flight recorder remembers it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// Process-unique request id (see [`crate::trace::next_request_id`]).
    pub id: u64,
    /// The route label the request counted as (e.g. `batch`, `bad_request`).
    pub route: &'static str,
    /// The session (scenario) id the request addressed, when its path named
    /// one.
    pub session: Option<u64>,
    /// HTTP status of the response.
    pub status: u16,
    /// Handler latency in microseconds (excludes queue wait and I/O).
    pub latency_us: u64,
    /// Dispatch-to-worker-pickup wait in microseconds.
    pub queue_us: u64,
    /// Completion timestamp: microseconds since process start (see
    /// [`crate::trace::ts_us`]).
    pub ts_us: u64,
}

/// A fixed-capacity concurrent ring buffer of [`RequestRecord`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    /// Each slot holds the claim sequence it was written under, so snapshots
    /// can order records oldest → newest without trusting clocks.
    slots: Vec<Mutex<Option<(u64, RequestRecord)>>>,
    // Only the (cfg-gated) record path advances the cursor, so the `noop`
    // build never reads it.
    #[cfg_attr(feature = "noop", allow(dead_code))]
    cursor: AtomicUsize,
    recorded: AtomicU64,
}

impl FlightRecorder {
    /// A ring retaining the most recent `capacity` records (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
            recorded: AtomicU64::new(0),
        }
    }

    /// Number of records the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed (including those already overwritten).
    /// Always 0 with the `noop` feature.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Push one record, overwriting the oldest once the ring is full.
    #[inline]
    pub fn record(&self, record: RequestRecord) {
        #[cfg(not(feature = "noop"))]
        {
            let seq = self.recorded.fetch_add(1, Ordering::Relaxed);
            let slot = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
            *sync_lock(&self.slots[slot]) = Some((seq, record));
        }
        #[cfg(feature = "noop")]
        let _ = record;
    }

    /// Every retained record, oldest → newest.
    pub fn snapshot(&self) -> Vec<RequestRecord> {
        let mut entries: Vec<(u64, RequestRecord)> = self
            .slots
            .iter()
            .filter_map(|slot| sync_lock(slot).clone())
            .collect();
        entries.sort_unstable_by_key(|(seq, _)| *seq);
        entries.into_iter().map(|(_, record)| record).collect()
    }

    /// The newest `n` retained records, oldest → newest.
    pub fn recent(&self, n: usize) -> Vec<RequestRecord> {
        let mut records = self.snapshot();
        if records.len() > n {
            records.drain(..records.len() - n);
        }
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn record(id: u64, latency_us: u64) -> RequestRecord {
        RequestRecord {
            id,
            route: "batch",
            session: Some(1),
            status: 200,
            latency_us,
            queue_us: 0,
            ts_us: id,
        }
    }

    #[test]
    fn retains_the_most_recent_capacity_records() {
        let ring = FlightRecorder::new(4);
        for i in 0..10u64 {
            ring.record(record(i, i));
        }
        let snapshot = ring.snapshot();
        if crate::enabled() {
            assert_eq!(ring.recorded(), 10);
            let ids: Vec<u64> = snapshot.iter().map(|r| r.id).collect();
            assert_eq!(ids, vec![6, 7, 8, 9]);
            assert_eq!(
                ring.recent(2).iter().map(|r| r.id).collect::<Vec<_>>(),
                [8, 9]
            );
        } else {
            assert!(snapshot.is_empty());
            assert_eq!(ring.recorded(), 0);
        }
    }

    #[test]
    fn concurrent_writers_lose_nothing_before_wrap() {
        if !crate::enabled() {
            return;
        }
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 64;
        let ring = Arc::new(FlightRecorder::new((THREADS * PER_THREAD) as usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        ring.record(record(t * PER_THREAD + i, i));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let mut ids: Vec<u64> = ring.snapshot().iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..THREADS * PER_THREAD).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let ring = FlightRecorder::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(record(1, 5));
        ring.record(record(2, 6));
        if crate::enabled() {
            assert_eq!(ring.snapshot().len(), 1);
            assert_eq!(ring.snapshot()[0].id, 2);
        }
    }
}
