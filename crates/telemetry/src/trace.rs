//! Structured trace lines with per-request ids.
//!
//! A trace line is a single stderr line of space-separated `key=value`
//! pairs, always starting with `ts_us` (microseconds since process start)
//! and the event name:
//!
//! ```text
//! TRACE ts_us=1234567 event=request.done req=42 route=batch status=200 us=183
//! ```
//!
//! Emission is gated by the `TAGGING_TRACE` environment variable (any
//! non-empty value other than `0`); when unset, [`enabled`] is a cached
//! boolean check and [`emit`] returns before formatting anything. Tracing
//! writes only to stderr and never feeds back into serving decisions, so it
//! cannot perturb state digests or golden traces.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static TRACE_ENABLED: OnceLock<bool> = OnceLock::new();
static PROCESS_START: OnceLock<Instant> = OnceLock::new();
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Whether trace emission is on: `TAGGING_TRACE` set to a non-empty value
/// other than `0`. Computed once and cached for the process lifetime.
pub fn enabled() -> bool {
    *TRACE_ENABLED.get_or_init(|| {
        std::env::var("TAGGING_TRACE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Allocate the next process-unique request id (starts at 1).
pub fn next_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
}

/// Microseconds since the first telemetry call in this process; the `ts_us`
/// field of every trace line.
pub fn ts_us() -> u64 {
    let start = PROCESS_START.get_or_init(Instant::now);
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Emit one structured trace line to stderr if tracing is enabled.
///
/// `fields` are appended verbatim as `key=value` pairs; callers are
/// expected to pass values without spaces or newlines (ids, route names,
/// integers). The line is formatted only when tracing is on.
///
/// ```
/// tagging_telemetry::trace::emit("request.done", &[("req", "42"), ("status", "200")]);
/// ```
pub fn emit(event: &str, fields: &[(&str, &str)]) {
    if !enabled() {
        return;
    }
    let mut line = format!("TRACE ts_us={} event={}", ts_us(), event);
    for (k, v) in fields {
        line.push(' ');
        line.push_str(k);
        line.push('=');
        line.push_str(v);
    }
    eprintln!("{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_unique_and_increasing() {
        let a = next_request_id();
        let b = next_request_id();
        assert!(b > a);
    }

    #[test]
    fn ts_us_is_monotone() {
        let a = ts_us();
        let b = ts_us();
        assert!(b >= a);
    }
}
