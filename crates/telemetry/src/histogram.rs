//! Fixed-bucket log-scale latency histograms.
//!
//! Values (typically microsecond durations) land in one of 65 power-of-two
//! buckets: bucket 0 holds exactly the value 0, and bucket `i` (1..=64)
//! holds `[2^(i-1), 2^i)` — so every `u64` including `u64::MAX` maps to a
//! bucket and bucket upper bounds are `2^i - 1`. Quantiles derived from the
//! buckets are upper bounds that overshoot the true value by strictly less
//! than 2x, which is plenty for latency dashboards and for the loadgen's
//! client-vs-server cross-check.
//!
//! Recording is lock-free: the bucket counters are sharded per recording
//! thread exactly like [`Counter`](crate::Counter), plus a per-shard
//! running sum and max. Snapshots read all shards and merge, and two
//! snapshots (e.g. from different scrape intervals or processes) merge
//! count-for-count.

#[cfg(not(feature = "noop"))]
use crate::metrics::thread_shard;
use crate::metrics::{PaddedU64, SHARDS};
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Number of buckets: one for zero plus one per bit of `u64`.
pub const BUCKET_COUNT: usize = 65;

/// Map a value to its bucket index: 0 → 0, `v` in `[2^(i-1), 2^i)` → `i`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`: `2^i - 1` (saturating at
/// `u64::MAX` for `i = 64`). Bucket 0's bound is 0.
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[repr(align(64))]
struct HistogramShard {
    buckets: [PaddedU64; BUCKET_COUNT],
    sum: PaddedU64,
    max: PaddedU64,
}

impl Default for HistogramShard {
    fn default() -> Self {
        Self {
            // Arrays only derive Default up to 32 elements.
            buckets: std::array::from_fn(|_| PaddedU64::default()),
            sum: PaddedU64::default(),
            max: PaddedU64::default(),
        }
    }
}

/// A log-scale latency histogram with sharded atomic buckets.
///
/// With the `noop` feature [`Histogram::record`] compiles to nothing and
/// snapshots are all zeros.
#[derive(Default)]
pub struct Histogram {
    shards: [HistogramShard; SHARDS],
}

impl Histogram {
    /// Create an empty histogram. Usually obtained via
    /// [`Registry::histogram`](crate::Registry::histogram) instead.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(not(feature = "noop"))]
        {
            let shard = &self.shards[thread_shard()];
            shard.buckets[bucket_of(v)]
                .0
                .fetch_add(1, Ordering::Relaxed);
            shard.sum.0.fetch_add(v, Ordering::Relaxed);
            shard.max.0.fetch_max(v, Ordering::Relaxed);
        }
        #[cfg(feature = "noop")]
        let _ = v;
    }

    /// Start a timer that records its elapsed microseconds into this
    /// histogram when dropped.
    pub fn start_timer(&self) -> Timer<'_> {
        Timer {
            histogram: self,
            start: Instant::now(),
        }
    }

    /// Merge all shards into a point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::default();
        for shard in &self.shards {
            for (i, b) in shard.buckets.iter().enumerate() {
                snap.buckets[i] = snap.buckets[i].wrapping_add(b.0.load(Ordering::Relaxed));
            }
            snap.sum = snap.sum.wrapping_add(shard.sum.0.load(Ordering::Relaxed));
            snap.max = snap.max.max(shard.max.0.load(Ordering::Relaxed));
        }
        snap
    }
}

/// Guard that records elapsed wall time (in microseconds) into a histogram
/// when dropped. Created by [`Histogram::start_timer`].
pub struct Timer<'a> {
    histogram: &'a Histogram,
    start: Instant,
}

impl Timer<'_> {
    /// Microseconds elapsed since the timer started.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        self.histogram.record(self.elapsed_us());
    }
}

/// A merged, point-in-time view of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_of`] for the bucket scheme).
    pub buckets: [u64; BUCKET_COUNT],
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKET_COUNT],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.wrapping_add(b))
    }

    /// Mean of observed values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Fold another snapshot into this one count-for-count.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.wrapping_add(*b);
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Upper-bound estimate of quantile `q` in `[0, 1]`: the bucket upper
    /// bound that the `ceil(q * count)`-th smallest observation falls under,
    /// clamped to the observed max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen = seen.wrapping_add(b);
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median upper bound. See [`HistogramSnapshot::quantile`].
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound. See [`HistogramSnapshot::quantile`].
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound. See [`HistogramSnapshot::quantile`].
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKET_COUNT {
            assert_eq!(bucket_of(bucket_upper(i)), i, "upper bound of bucket {i}");
        }
        for i in 1..64 {
            assert_eq!(bucket_of(1u64 << (i - 1)), i, "lower bound of bucket {i}");
        }
    }

    #[test]
    fn quantiles_bound_true_values() {
        if !crate::enabled() {
            return;
        }
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.max, 1000);
        // True p50 is 500; the bucket upper bound may overshoot but by < 2x.
        let p50 = snap.p50();
        assert!((500..1000).contains(&p50), "p50 = {p50}");
        assert!(snap.p90() >= 900);
        assert!(snap.p99() <= snap.max);
        assert!(snap.p50() <= snap.p90() && snap.p90() <= snap.p99());
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.max, 0);
    }
}
