//! Rolling-window telemetry: a ring of per-interval delta snapshots.
//!
//! The cumulative registry answers "how many since boot"; a server under
//! heavy traffic also needs "what was p99 over the last 10 seconds". The
//! background publisher task calls [`WindowRing::rotate`] once per interval
//! (nominally one second) with a fresh cumulative [`RegistrySnapshot`]; the
//! ring keeps the *delta* against the previous rotation. A trailing window
//! of `k` slots is then just the merge of the `k` newest deltas — counters
//! add, histogram buckets add, gauges keep their most recent value — and
//! quantiles/rates fall out of the merged histograms.
//!
//! Capture stays lock-free on the recording side: rotation reads the same
//! sharded atomics every scrape does, so request threads never see the ring.
//! The ring itself is mutated only by the single publisher task and read by
//! scrape requests, behind whatever lock the host chooses (the server uses a
//! plain `Mutex`; both paths are cold).
//!
//! ## Delta semantics
//!
//! * **Counters** subtract: a window counter is the number of increments in
//!   that interval.
//! * **Histograms** subtract bucket-for-bucket (and by `sum`); the window's
//!   `max` is the cumulative max at rotation time when the interval recorded
//!   anything, else 0 — an upper bound for intermediate windows and exact
//!   once the interval containing the true maximum is inside the window.
//! * **Gauges** are instantaneous, not flows: a delta slot carries the gauge
//!   value *at rotation time*, and merging keeps the newest slot's value.
//!
//! Merging every slot of a ring that saw all traffic reproduces the flat
//! cumulative snapshot exactly (count-for-count, sum-for-sum, max-for-max) —
//! pinned by the `windows` proptest suite.

use crate::histogram::HistogramSnapshot;
use crate::registry::{CounterSample, HistogramSample, RegistrySnapshot};
use std::collections::BTreeMap;
use std::collections::VecDeque;

impl HistogramSnapshot {
    /// The per-interval delta between this (cumulative) snapshot and an
    /// earlier cumulative `previous`: bucket counts and sums subtract, and
    /// `max` carries the cumulative max when the interval recorded anything
    /// (see the module docs for why that is exact over a full ring).
    pub fn delta_since(&self, previous: &HistogramSnapshot) -> HistogramSnapshot {
        let mut delta = HistogramSnapshot::default();
        for (i, (cur, prev)) in self.buckets.iter().zip(previous.buckets.iter()).enumerate() {
            delta.buckets[i] = cur.wrapping_sub(*prev);
        }
        delta.sum = self.sum.wrapping_sub(previous.sum);
        delta.max = if delta.count() > 0 { self.max } else { 0 };
        delta
    }
}

/// Compute the delta registry snapshot `current - previous`.
///
/// Families present only in `current` (registered since the last rotation)
/// contribute their full cumulative value; families that vanished (never
/// happens with the global registry, which only grows) are dropped.
pub fn delta_snapshot(current: &RegistrySnapshot, previous: &RegistrySnapshot) -> RegistrySnapshot {
    /// A family's identity within one snapshot: `(name, labels)`.
    type FamilyKey<'a> = (&'a str, &'a [(String, String)]);
    let prev_counters: BTreeMap<FamilyKey<'_>, u64> = previous
        .counters
        .iter()
        .map(|c| ((c.name.as_str(), c.labels.as_slice()), c.value))
        .collect();
    let prev_histograms: BTreeMap<FamilyKey<'_>, &HistogramSnapshot> = previous
        .histograms
        .iter()
        .map(|h| ((h.name.as_str(), h.labels.as_slice()), &h.snapshot))
        .collect();
    RegistrySnapshot {
        counters: current
            .counters
            .iter()
            .map(|c| {
                let prev = prev_counters
                    .get(&(c.name.as_str(), c.labels.as_slice()))
                    .copied()
                    .unwrap_or(0);
                CounterSample {
                    value: c.value.wrapping_sub(prev),
                    ..c.clone()
                }
            })
            .collect(),
        // Gauges are instantaneous: the slot carries the value as of this
        // rotation, and merges keep the newest.
        gauges: current.gauges.clone(),
        histograms: current
            .histograms
            .iter()
            .map(|h| {
                let delta = match prev_histograms.get(&(h.name.as_str(), h.labels.as_slice())) {
                    Some(prev) => h.snapshot.delta_since(prev),
                    None => h.snapshot.clone(),
                };
                HistogramSample {
                    snapshot: delta,
                    ..h.clone()
                }
            })
            .collect(),
    }
}

/// Merge delta snapshot `other` into `acc`. `other` must be the *newer* of
/// the two slots: counters and histogram buckets add, gauges take `other`'s
/// value (instantaneous, newest wins), families unknown to `acc` are
/// appended.
pub fn merge_snapshots(acc: &mut RegistrySnapshot, other: &RegistrySnapshot) {
    for counter in &other.counters {
        match acc
            .counters
            .iter_mut()
            .find(|c| c.name == counter.name && c.labels == counter.labels)
        {
            Some(existing) => existing.value = existing.value.wrapping_add(counter.value),
            None => acc.counters.push(counter.clone()),
        }
    }
    for gauge in &other.gauges {
        match acc
            .gauges
            .iter_mut()
            .find(|g| g.name == gauge.name && g.labels == gauge.labels)
        {
            Some(existing) => existing.value = gauge.value,
            None => acc.gauges.push(gauge.clone()),
        }
    }
    for histogram in &other.histograms {
        match acc
            .histograms
            .iter_mut()
            .find(|h| h.name == histogram.name && h.labels == histogram.labels)
        {
            Some(existing) => existing.snapshot.merge(&histogram.snapshot),
            None => acc.histograms.push(histogram.clone()),
        }
    }
}

/// A fixed-capacity ring of per-interval delta snapshots.
///
/// One writer (the background publisher) calls [`WindowRing::rotate`] per
/// interval; readers call [`WindowRing::window`] for a merged trailing view.
/// The ring holds `capacity` slots — at a one-second rotation cadence, 64
/// slots cover every window up to a trailing minute.
#[derive(Debug)]
pub struct WindowRing {
    capacity: usize,
    /// Nominal slot duration; windows are addressed in slots but reported in
    /// (approximate) covered milliseconds.
    interval_ms: u64,
    /// Oldest → newest delta slots.
    slots: VecDeque<RegistrySnapshot>,
    /// The cumulative snapshot of the previous rotation.
    last_cumulative: Option<RegistrySnapshot>,
    rotations: u64,
}

impl WindowRing {
    /// A ring of `capacity` slots (clamped to ≥ 1) rotated every
    /// `interval_ms` milliseconds (clamped to ≥ 1).
    pub fn new(capacity: usize, interval_ms: u64) -> Self {
        Self {
            capacity: capacity.max(1),
            interval_ms: interval_ms.max(1),
            slots: VecDeque::new(),
            last_cumulative: None,
            rotations: 0,
        }
    }

    /// Number of slots the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Nominal slot duration in milliseconds.
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// Slots currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True before the first rotation.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total rotations since construction.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Push the delta since the previous rotation, evicting the oldest slot
    /// when full. The first rotation's delta is the snapshot itself (delta
    /// against an all-zero baseline), so pre-ring traffic is never lost.
    pub fn rotate(&mut self, cumulative: RegistrySnapshot) {
        let delta = match &self.last_cumulative {
            Some(previous) => delta_snapshot(&cumulative, previous),
            None => cumulative.clone(),
        };
        if self.slots.len() == self.capacity {
            self.slots.pop_front();
        }
        self.slots.push_back(delta);
        self.last_cumulative = Some(cumulative);
        self.rotations += 1;
    }

    /// The merged view over the trailing `slots` slots (clamped to what the
    /// ring holds), plus the number of slots actually merged.
    pub fn window(&self, slots: usize) -> (RegistrySnapshot, usize) {
        let take = slots.clamp(1, self.capacity).min(self.slots.len());
        let mut merged = RegistrySnapshot::default();
        // Oldest → newest so gauge merges end on the newest value.
        for slot in self.slots.iter().skip(self.slots.len() - take) {
            merge_snapshots(&mut merged, slot);
        }
        (merged, take)
    }

    /// Convenience: the trailing window covering at least `ms` milliseconds
    /// (rounded up to whole slots), plus the merged slot count.
    pub fn window_ms(&self, ms: u64) -> (RegistrySnapshot, usize) {
        let slots = ms.div_ceil(self.interval_ms).max(1);
        self.window(usize::try_from(slots).unwrap_or(usize::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_registry() -> Registry {
        let registry = Registry::new();
        registry
            .counter("win_requests_total", &[("route", "a")], "requests")
            .add(5);
        registry.gauge("win_conns", &[], "connections").set(3);
        registry.histogram("win_lat_us", &[], "latency").record(100);
        registry
    }

    #[test]
    fn first_rotation_carries_the_full_cumulative() {
        if !crate::enabled() {
            return;
        }
        let registry = sample_registry();
        let mut ring = WindowRing::new(4, 1000);
        ring.rotate(registry.snapshot());
        let (window, merged) = ring.window(4);
        assert_eq!(merged, 1);
        assert_eq!(window.counters[0].value, 5);
        assert_eq!(window.histograms[0].snapshot.count(), 1);
    }

    #[test]
    fn deltas_subtract_and_windows_add_back() {
        if !crate::enabled() {
            return;
        }
        let registry = sample_registry();
        let counter = registry.counter("win_requests_total", &[("route", "a")], "requests");
        let histogram = registry.histogram("win_lat_us", &[], "latency");
        let gauge = registry.gauge("win_conns", &[], "connections");
        let mut ring = WindowRing::new(8, 1000);
        ring.rotate(registry.snapshot());

        counter.add(2);
        histogram.record(200);
        gauge.set(7);
        ring.rotate(registry.snapshot());

        // The newest slot alone holds only the second interval's flow.
        let (latest, _) = ring.window(1);
        let c = latest
            .counters
            .iter()
            .find(|c| c.name == "win_requests_total")
            .unwrap();
        assert_eq!(c.value, 2);
        let h = latest
            .histograms
            .iter()
            .find(|h| h.name == "win_lat_us")
            .unwrap();
        assert_eq!(h.snapshot.count(), 1);
        assert_eq!(h.snapshot.sum, 200);
        // Gauges are instantaneous.
        let g = latest
            .gauges
            .iter()
            .find(|g| g.name == "win_conns")
            .unwrap();
        assert_eq!(g.value, 7);

        // Both slots together reproduce the cumulative state.
        let (both, merged) = ring.window(2);
        assert_eq!(merged, 2);
        let c = both
            .counters
            .iter()
            .find(|c| c.name == "win_requests_total")
            .unwrap();
        assert_eq!(c.value, 7);
        let h = both
            .histograms
            .iter()
            .find(|h| h.name == "win_lat_us")
            .unwrap();
        assert_eq!(h.snapshot.count(), 2);
        assert_eq!(h.snapshot.sum, 300);
        assert_eq!(h.snapshot.max, 200);
    }

    #[test]
    fn ring_evicts_oldest_slot_at_capacity() {
        if !crate::enabled() {
            return;
        }
        let registry = Registry::new();
        let counter = registry.counter("evict_total", &[], "n");
        let mut ring = WindowRing::new(2, 1000);
        for _ in 0..5 {
            counter.inc();
            ring.rotate(registry.snapshot());
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.rotations(), 5);
        // Only the last two one-increment intervals remain.
        let (window, merged) = ring.window(10);
        assert_eq!(merged, 2);
        assert_eq!(window.counters[0].value, 2);
    }

    #[test]
    fn window_ms_rounds_up_to_whole_slots() {
        let ring = WindowRing::new(64, 1000);
        assert_eq!(ring.window_ms(10_000).1, 0); // empty ring: nothing merged
        let mut ring = WindowRing::new(64, 250);
        for _ in 0..10 {
            ring.rotate(RegistrySnapshot::default());
        }
        // 1s at 250ms slots = 4 slots.
        assert_eq!(ring.window_ms(1000).1, 4);
        // Sub-slot windows clamp to one slot.
        assert_eq!(ring.window_ms(1).1, 1);
    }

    #[test]
    fn families_registered_mid_flight_enter_the_next_delta() {
        if !crate::enabled() {
            return;
        }
        let registry = Registry::new();
        registry.counter("early_total", &[], "n").inc();
        let mut ring = WindowRing::new(4, 1000);
        ring.rotate(registry.snapshot());
        registry.counter("late_total", &[], "n").add(9);
        ring.rotate(registry.snapshot());
        let (latest, _) = ring.window(1);
        let late = latest
            .counters
            .iter()
            .find(|c| c.name == "late_total")
            .unwrap();
        assert_eq!(late.value, 9);
        let early = latest
            .counters
            .iter()
            .find(|c| c.name == "early_total")
            .unwrap();
        assert_eq!(early.value, 0);
    }
}
