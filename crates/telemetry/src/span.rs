//! Scope timing: enter a named span, record its duration on drop.

use crate::histogram::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// Times a lexical scope and records the elapsed microseconds into a named
/// histogram when dropped.
///
/// ```
/// {
///     let _span = tagging_telemetry::Span::enter("wal.fsync");
///     // ... work ...
/// } // duration recorded into histogram `wal_fsync_us` here
/// ```
///
/// `enter` resolves the histogram through the global registry lock on every
/// call, which is fine for per-request and coarser scopes. Hot loops should
/// resolve an `Arc<Histogram>` once and use
/// [`Histogram::start_timer`](crate::Histogram::start_timer) instead.
pub struct Span {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl Span {
    /// Start timing the span `name`, recording into the histogram
    /// `<sanitized name>_us` of the [global registry](crate::global) on
    /// drop.
    pub fn enter(name: &str) -> Span {
        crate::global().span(name)
    }

    /// Start timing into an explicit histogram (used by
    /// [`Registry::span`](crate::Registry::span)).
    pub(crate) fn over(histogram: Arc<Histogram>) -> Span {
        Span {
            histogram,
            start: Instant::now(),
        }
    }

    /// Microseconds elapsed since the span was entered.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.histogram.record(self.elapsed_us());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_named_histogram() {
        {
            let _span = Span::enter("test.span-demo");
        }
        let snap = crate::global().snapshot();
        let sample = snap
            .histograms
            .iter()
            .find(|h| h.name == "test_span_demo_us")
            .expect("span histogram registered");
        if crate::enabled() {
            assert!(sample.snapshot.count() >= 1);
        }
    }
}
