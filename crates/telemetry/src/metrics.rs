//! Sharded atomic counters and gauges.
//!
//! Counters are the write-hot primitive: every request touches several. To
//! keep concurrent recorders from bouncing a single cache line, a counter is
//! eight cache-line-aligned `AtomicU64` shards and each recording thread
//! sticks to one shard chosen round-robin at first use. Reads sum all
//! shards; they are scrape-path only and can afford the walk.

#[cfg(not(feature = "noop"))]
use std::sync::atomic::AtomicUsize;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of atomic shards per counter / histogram. Eight covers the worker
/// counts this workspace runs with while keeping snapshots cheap.
pub(crate) const SHARDS: usize = 8;

/// One cache line's worth of counter so two shards never share a line.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct PaddedU64(pub(crate) AtomicU64);

// Shard assignment only exists on the recording path, which the `noop`
// feature compiles away entirely.
#[cfg(not(feature = "noop"))]
static NEXT_THREAD_SHARD: AtomicUsize = AtomicUsize::new(0);

#[cfg(not(feature = "noop"))]
thread_local! {
    static THREAD_SHARD: usize =
        NEXT_THREAD_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// The shard index this thread records into. Assigned round-robin the first
/// time a thread records anything, so a pool of N workers spreads across
/// `min(N, SHARDS)` distinct cache lines.
#[inline]
#[cfg(not(feature = "noop"))]
pub(crate) fn thread_shard() -> usize {
    THREAD_SHARD.with(|s| *s)
}

/// A monotonically increasing counter (e.g. requests served, bytes written).
///
/// With the `noop` feature all recording methods compile to nothing and
/// [`Counter::get`] always returns 0.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// Create a counter at zero. Usually obtained via
    /// [`Registry::counter`](crate::Registry::counter) instead.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "noop"))]
        self.shards[thread_shard()]
            .0
            .fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "noop")]
        let _ = n;
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

/// An up/down instantaneous value (e.g. live connections, sessions held by a
/// registry shard).
///
/// Gauges are set or adjusted from whichever thread owns the underlying
/// resource, so a single atomic suffices — there is no multi-writer hot
/// path to shard. With the `noop` feature all recording methods compile to
/// nothing and [`Gauge::get`] always returns 0.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Create a gauge at zero. Usually obtained via
    /// [`Registry::gauge`](crate::Registry::gauge) instead.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(not(feature = "noop"))]
        self.value.store(v, Ordering::Relaxed);
        #[cfg(feature = "noop")]
        let _ = v;
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adjust by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        #[cfg(not(feature = "noop"))]
        self.value.fetch_add(delta, Ordering::Relaxed);
        #[cfg(feature = "noop")]
        let _ = delta;
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        if crate::enabled() {
            assert_eq!(c.get(), 4000);
        } else {
            assert_eq!(c.get(), 0);
        }
    }

    #[test]
    fn gauge_tracks_up_and_down() {
        let g = Gauge::new();
        g.set(10);
        g.inc();
        g.dec();
        g.add(-3);
        if crate::enabled() {
            assert_eq!(g.get(), 7);
        } else {
            assert_eq!(g.get(), 0);
        }
    }
}
