//! # tagging-telemetry
//!
//! Std-only observability for the tagging workspace: a process-wide metrics
//! registry of atomic counters, gauges and fixed-bucket log-scale latency
//! histograms, plus a lightweight span/timer API and a structured trace-line
//! format with per-request ids.
//!
//! * [`Counter`] / [`Gauge`] — monotonic and up/down values, sharded atomics
//!   on the hot path so concurrent recorders do not bounce one cache line;
//! * [`Histogram`] — 65 power-of-two buckets covering every `u64` (0,
//!   `u64::MAX` and all boundaries included), sharded per recording thread,
//!   with mergeable [`HistogramSnapshot`]s from which p50/p90/p99 and the
//!   exact max are derived;
//! * [`Registry`] — named metric families with optional labels; [`global`]
//!   is the process-wide instance every layer records into, and
//!   [`RegistrySnapshot::to_prometheus`] renders the whole registry in
//!   Prometheus text exposition format (the server's `GET /metrics`);
//! * [`Span`] — `Span::enter("wal.append")` records the scope's duration in
//!   microseconds into the histogram `wal_append_us` on drop;
//! * [`trace`] — structured `key=value` log lines gated by the
//!   `TAGGING_TRACE` environment variable, with [`trace::next_request_id`]
//!   supplying process-unique request ids.
//!
//! ## Zero cost to determinism
//!
//! Nothing in this crate feeds back into allocation decisions: metrics are
//! write-only from the serving path and read only by the scrape endpoints,
//! so state digests and golden traces are identical with telemetry on or
//! off. The `noop` cargo feature compiles every recording operation to an
//! empty inline function (snapshots then read all zeros), which CI uses to
//! prove the instrumented and uninstrumented binaries produce byte-identical
//! state digests.
//!
//! ## Quick example
//!
//! ```
//! use tagging_telemetry::{global, Span};
//!
//! let requests = global().counter("demo_requests_total", &[("route", "ping")], "Demo requests");
//! requests.inc();
//! {
//!     let _span = Span::enter("demo.work"); // records into `demo_work_us` on drop
//! }
//! let snapshot = global().snapshot();
//! let text = snapshot.to_prometheus();
//! if tagging_telemetry::enabled() {
//!     assert!(text.contains("demo_requests_total{route=\"ping\"} 1"));
//! }
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod flight;
mod histogram;
mod metrics;
mod registry;
mod span;
pub mod trace;
mod watchdog;
mod window;

pub use flight::{FlightRecorder, RequestRecord};
pub use histogram::{bucket_of, bucket_upper, Histogram, HistogramSnapshot, Timer, BUCKET_COUNT};
pub use metrics::{Counter, Gauge};
pub use registry::{CounterSample, GaugeSample, HistogramSample, Registry, RegistrySnapshot};
pub use span::Span;
pub use watchdog::Watchdog;
pub use window::{delta_snapshot, merge_snapshots, WindowRing};

use std::sync::{Mutex, MutexGuard, OnceLock};

/// Lock a mutex, recovering the guard if a panicking holder poisoned it.
/// Telemetry state is always internally consistent (every write is a whole
/// `Option` replacement), so poison carries no information here.
pub(crate) fn sync_lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// True when the crate was built with recording enabled (the default). With
/// the `noop` feature every recording operation compiles to nothing and
/// snapshots read all zeros; callers that surface telemetry (the server's
/// `/stats`) report this flag so scrapers can tell "no traffic" from
/// "compiled out".
pub const fn enabled() -> bool {
    cfg!(not(feature = "noop"))
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every layer records into by default.
///
/// Handles returned by [`Registry::counter`] / [`Registry::gauge`] /
/// [`Registry::histogram`] are `Arc`s: look them up once at construction
/// time and keep the handle — the hot path then touches only the metric's
/// own atomics, never the registry lock.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}
