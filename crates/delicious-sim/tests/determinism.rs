//! Deterministic-seed regression tests for [`delicious_sim::generator::generate`].
//!
//! The whole experiment pipeline (scenario freezing, strategy comparison,
//! figure reproduction) assumes the corpus is a pure function of its
//! [`GeneratorConfig`]. These tests pin that contract down in three layers so
//! future performance refactors of the generator can't silently change the
//! data the paper's figures are reproduced from:
//!
//! 1. bitwise determinism — same config ⇒ identical corpora;
//! 2. seed sensitivity — different seeds ⇒ different corpora;
//! 3. golden summary stats — post count, tag-vocabulary size and Zipf head
//!    mass for a fixed config match recorded values exactly.

use delicious_sim::generator::{generate, generate_with, GeneratorConfig, SyntheticCorpus};
use tagging_runtime::Runtime;

/// Summary fingerprint of a corpus: total posts, distinct-tag vocabulary size
/// and Zipf head mass (the fraction of all posts landing on the top 10% of
/// resources by popularity weight).
fn summary(corpus: &SyntheticCorpus) -> (usize, usize, f64) {
    let total_posts = corpus.total_posts();
    let vocab_size = corpus.corpus.tags.len();

    let mut by_popularity: Vec<usize> = (0..corpus.len()).collect();
    by_popularity.sort_by(|&a, &b| {
        corpus.popularity[b]
            .partial_cmp(&corpus.popularity[a])
            .expect("popularity weights are finite")
    });
    let head = corpus.len().div_ceil(10);
    let head_posts: usize = by_popularity[..head]
        .iter()
        .map(|&i| corpus.corpus.resources[i].post_count())
        .sum();
    let head_mass = head_posts as f64 / total_posts as f64;

    (total_posts, vocab_size, head_mass)
}

#[test]
fn same_config_and_seed_give_identical_corpora() {
    let config = GeneratorConfig::small(60, 42);
    let a = generate(&config);
    let b = generate(&config);

    assert_eq!(summary(&a), summary(&b));
    assert_eq!(a.popularity, b.popularity);
    assert_eq!(a.initial_posts, b.initial_posts);
    assert_eq!(a.len(), b.len());
    for id in a.resource_ids() {
        assert_eq!(a.full_sequence(id), b.full_sequence(id), "resource {id:?}");
        assert_eq!(a.true_distribution(id), b.true_distribution(id));
        assert_eq!(a.taxonomy.assignment(id), b.taxonomy.assignment(id));
    }
}

#[test]
fn thread_count_does_not_change_the_corpus() {
    // The tagging-runtime determinism contract: per-resource derived seeds make
    // the parallel generator bit-identical to the sequential one.
    let config = GeneratorConfig::small(40, 9);
    let sequential = generate_with(&config, &Runtime::sequential());
    for threads in [2, 8] {
        let parallel = generate_with(&config, &Runtime::new(threads));
        assert_eq!(summary(&sequential), summary(&parallel));
        assert_eq!(sequential.popularity, parallel.popularity);
        assert_eq!(sequential.initial_posts, parallel.initial_posts);
        for id in sequential.resource_ids() {
            assert_eq!(
                sequential.full_sequence(id),
                parallel.full_sequence(id),
                "threads = {threads}, resource {id:?}"
            );
            assert_eq!(
                sequential.true_distribution(id),
                parallel.true_distribution(id)
            );
            assert_eq!(
                sequential.taxonomy.assignment(id),
                parallel.taxonomy.assignment(id)
            );
        }
    }
}

#[test]
fn different_seeds_give_different_corpora() {
    let a = generate(&GeneratorConfig::small(60, 42));
    let b = generate(&GeneratorConfig::small(60, 43));

    let differs = a
        .resource_ids()
        .any(|id| a.full_sequence(id) != b.full_sequence(id));
    assert!(differs, "seeds 42 and 43 produced identical post sequences");
}

#[test]
fn seed_is_the_only_source_of_randomness() {
    // Rebuilding the config from scratch (rather than cloning) must not
    // change the output: no hidden global state feeds the generator.
    let a = generate(&GeneratorConfig::small(25, 7));
    let b = generate(&GeneratorConfig::small(25, 7));
    for id in a.resource_ids() {
        assert_eq!(a.full_sequence(id), b.full_sequence(id));
    }
}

#[test]
fn golden_summary_stats_for_pinned_seed() {
    // Recorded from the current generator. If an intentional change to the
    // generation algorithm alters these, re-record them in the same commit and
    // call the change out in review — every figure downstream shifts with it.
    let corpus = generate(&GeneratorConfig::small(50, 20130408));
    let (total_posts, vocab_size, head_mass) = summary(&corpus);

    assert_eq!(total_posts, GOLDEN_TOTAL_POSTS);
    assert_eq!(vocab_size, GOLDEN_VOCAB_SIZE);
    assert!(
        (head_mass - GOLDEN_HEAD_MASS).abs() < 1e-12,
        "head mass drifted: {head_mass} vs {GOLDEN_HEAD_MASS}"
    );
}

// Re-recorded when the generator moved to per-resource derived RNG streams
// (the tagging-runtime parallelisation): sequence lengths and popularity are
// decided in the sequential prologue and did not move, but the sampled tag
// content (and with it the typo vocabulary) legitimately changed.
const GOLDEN_TOTAL_POSTS: usize = 3989;
const GOLDEN_VOCAB_SIZE: usize = 344;
const GOLDEN_HEAD_MASS: f64 = 0.274_003_509_651_541_74;
