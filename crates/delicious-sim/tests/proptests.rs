//! Property-based tests for the synthetic corpus generator: whatever the
//! configuration and seed, a generated corpus must satisfy the structural
//! invariants every downstream experiment relies on.

use proptest::prelude::*;

use delicious_sim::generator::{generate, GeneratorConfig};
use delicious_sim::stats::{CorpusStatistics, PostCountHistogram, StatisticsParams};
use delicious_sim::zipf::Zipf;
use tagging_core::stability::StabilityParams;

/// Strategy: a small but varied generator configuration.
fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (10usize..60, 2usize..8, 0u64..1_000, 0.6f64..1.4).prop_map(
        |(num_resources, num_topics, seed, exponent)| {
            let mut config = GeneratorConfig::small(num_resources, seed);
            config.num_topics = num_topics;
            config.popularity_exponent = exponent;
            config
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Structural invariants of a generated corpus.
    #[test]
    fn generated_corpus_is_well_formed(config in arb_config()) {
        let corpus = generate(&config);
        prop_assert_eq!(corpus.len(), config.num_resources);
        prop_assert_eq!(corpus.profiles.len(), config.num_resources);
        prop_assert_eq!(corpus.popularity.len(), config.num_resources);
        prop_assert_eq!(corpus.initial_posts.len(), config.num_resources);
        prop_assert_eq!(corpus.taxonomy.assigned_count(), config.num_resources);

        // Popularity is a probability distribution.
        let total: f64 = corpus.popularity.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);

        for id in corpus.resource_ids() {
            let full = corpus.full_sequence(id);
            prop_assert!(full.len() >= config.min_posts);
            prop_assert!(full.len() <= config.max_posts);
            // The initial prefix is a non-empty strict prefix.
            let c = corpus.initial_posts[id.index()];
            prop_assert!(c >= 1 && c < full.len());
            // Every post is non-empty and its tags exist in the dictionary.
            for post in full {
                prop_assert!(!post.is_empty());
                for tag in post.iter() {
                    prop_assert!(corpus.corpus.tags.name(tag).is_some());
                }
            }
            // The true distribution is a normalised distribution.
            prop_assert!((corpus.true_distribution(id).total_mass() - 1.0).abs() < 1e-9);
        }
    }

    /// The same configuration always generates the same corpus; different seeds
    /// generate different corpora.
    #[test]
    fn generation_is_deterministic(config in arb_config()) {
        let a = generate(&config);
        let b = generate(&config);
        prop_assert_eq!(a.initial_posts.clone(), b.initial_posts.clone());
        prop_assert_eq!(a.total_posts(), b.total_posts());
        let other = generate(&config.clone().with_seed(config.seed.wrapping_add(1)));
        // Total post counts may coincide, but the concrete sequences must differ.
        let differs = a
            .resource_ids()
            .any(|id| a.full_sequence(id) != other.full_sequence(id));
        prop_assert!(differs);
    }

    /// Corpus statistics are internally consistent for any generated corpus.
    #[test]
    fn statistics_are_consistent(config in arb_config()) {
        let corpus = generate(&config);
        let stats = CorpusStatistics::compute(
            &corpus,
            &StatisticsParams {
                stability: StabilityParams::new(10, 0.995),
                under_tagged_threshold: 10,
            },
        );
        prop_assert_eq!(stats.num_resources, corpus.len());
        prop_assert_eq!(stats.total_posts, corpus.total_posts());
        prop_assert!(stats.total_initial_posts <= stats.total_posts);
        prop_assert!(stats.wasted_posts <= stats.total_posts);
        prop_assert!(stats.over_tagged_initial <= stats.num_resources);
        prop_assert!(stats.under_tagged_initial <= stats.num_resources);
        prop_assert!((0.0..=1.0).contains(&stats.wasted_fraction));
        prop_assert!((0.0..=1.0).contains(&stats.stabilised_fraction()));
    }

    /// The post-count histogram always covers exactly the corpus resources.
    #[test]
    fn histogram_partitions_the_corpus(config in arb_config(), base in 2usize..12) {
        let corpus = generate(&config);
        let hist = PostCountHistogram::from_corpus(&corpus, base);
        prop_assert_eq!(hist.total(), corpus.len());
    }

    /// Zipf sampling stays within range and its pmf is a distribution for any
    /// size / exponent combination.
    #[test]
    fn zipf_is_a_distribution(n in 1usize..500, exponent in 0.2f64..3.0, seed in 0u64..100) {
        let zipf = Zipf::new(n, exponent);
        let total: f64 = (1..=n).map(|k| zipf.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let rank = zipf.sample(&mut rng);
            prop_assert!((1..=n).contains(&rank));
        }
    }
}
