//! Synthetic del.icio.us-style corpus generator.
//!
//! This is the substitute for the 2007 del.icio.us dump used by the paper's
//! experiments (§V-A). A generated [`SyntheticCorpus`] contains, for each
//! resource,
//!
//! * a latent [`ResourceProfile`] (its true tag distribution, built from the
//!   topic model in [`crate::topics`]);
//! * a full post sequence sampled from that distribution — the analogue of the
//!   resource's complete Year-2007 post sequence;
//! * a popularity weight following a Zipf law (Figure 1(b));
//! * an initial post count `c_i` — the analogue of the posts received by
//!   January 31 that form the starting state of every allocation strategy;
//! * a category assignment in a synthetic taxonomy (the ODP ground-truth
//!   substitute for §V-C).
//!
//! All randomness flows from a single seed, so every experiment in the
//! workspace is reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use tagging_core::model::{Corpus, Post, PostSequence, Resource, ResourceId};
use tagging_core::rfd::Rfd;
use tagging_runtime::{Runtime, SeedSequence};

use crate::taxonomy::{CategoryId, Taxonomy};
use crate::topics::{
    build_profile, PostDraft, PostSampler, ProfileParams, ResourceProfile, TopicId, TopicModel,
};
use crate::zipf::Zipf;

/// Configuration of the synthetic corpus generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of resources to generate (the paper's sample uses 5,000).
    pub num_resources: usize,
    /// Number of latent topics.
    pub num_topics: usize,
    /// Vocabulary size per topic.
    pub vocab_per_topic: usize,
    /// Sub-categories per topic in the synthetic taxonomy.
    pub subcategories_per_topic: usize,
    /// Zipf exponent of the resource popularity distribution.
    pub popularity_exponent: f64,
    /// Minimum number of posts in a resource's full sequence.
    pub min_posts: usize,
    /// Mean number of posts per resource over the full sequence
    /// (the paper's sample averages 112).
    pub mean_posts: usize,
    /// Hard cap on a single resource's sequence length.
    pub max_posts: usize,
    /// Fraction of the full sequence that, on average, arrives before the
    /// strategies start (the paper's January posts are 26.4% of the year).
    pub initial_fraction: f64,
    /// Maximum number of tags per post.
    pub max_tags_per_post: usize,
    /// Per-tag probability of a typo (a fresh, never-repeating tag).
    pub noise_rate: f64,
    /// Parameters of the per-resource latent profiles.
    pub profile: ProfileParams,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self::paper_sample()
    }
}

impl GeneratorConfig {
    /// The analogue of the paper's experimental sample: 5,000 resources whose
    /// sequences are long enough to reach their stable points, averaging ~112
    /// posts each, with a skewed initial (January) state.
    pub fn paper_sample() -> Self {
        Self {
            num_resources: 5_000,
            num_topics: 20,
            vocab_per_topic: 30,
            subcategories_per_topic: 4,
            popularity_exponent: 0.85,
            min_posts: 60,
            mean_posts: 112,
            max_posts: 3_000,
            initial_fraction: 0.264,
            max_tags_per_post: 4,
            noise_rate: 0.02,
            profile: ProfileParams::default(),
            seed: 20130408, // ICDE 2013 opened on 8 April 2013.
        }
    }

    /// A smaller configuration for unit/integration tests and quick examples.
    pub fn small(num_resources: usize, seed: u64) -> Self {
        Self {
            num_resources,
            num_topics: 6,
            vocab_per_topic: 12,
            subcategories_per_topic: 2,
            popularity_exponent: 0.9,
            min_posts: 40,
            mean_posts: 80,
            max_posts: 400,
            initial_fraction: 0.264,
            max_tags_per_post: 4,
            noise_rate: 0.02,
            profile: ProfileParams::default(),
            seed,
        }
    }

    /// A configuration that mimics the *whole* del.icio.us crawl rather than the
    /// curated sample: many resources, most of which receive only a handful of
    /// posts. Used to reproduce the post-count distribution of Figure 1(b).
    pub fn full_web(num_resources: usize, seed: u64) -> Self {
        Self {
            num_resources,
            num_topics: 20,
            vocab_per_topic: 30,
            subcategories_per_topic: 4,
            popularity_exponent: 1.25,
            min_posts: 1,
            mean_posts: 6,
            max_posts: 20_000,
            initial_fraction: 0.264,
            max_tags_per_post: 4,
            noise_rate: 0.02,
            profile: ProfileParams::default(),
            seed,
        }
    }

    /// Returns a copy with a different number of resources (used by the
    /// "effect of number of resources" sweep, Figure 6(e)/(h)).
    pub fn with_resources(mut self, num_resources: usize) -> Self {
        self.num_resources = num_resources;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A generated synthetic corpus: the workspace-wide analogue of the paper's
/// 5,000-URL del.icio.us sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticCorpus {
    /// The resources and their *full* post sequences (the whole "year").
    pub corpus: Corpus,
    /// Latent profile of each resource, indexed by `ResourceId::index()`.
    pub profiles: Vec<ResourceProfile>,
    /// Popularity weight of each resource (sums to 1), indexed by resource.
    pub popularity: Vec<f64>,
    /// Number of posts each resource has received *before* any strategy runs
    /// (the paper's `c_i`, i.e. the January posts).
    pub initial_posts: Vec<usize>,
    /// The synthetic category taxonomy with every resource assigned to a leaf.
    pub taxonomy: Taxonomy,
    /// The configuration the corpus was generated from.
    pub config: GeneratorConfig,
}

impl SyntheticCorpus {
    /// Number of resources.
    pub fn len(&self) -> usize {
        self.corpus.len()
    }

    /// True when the corpus holds no resources.
    pub fn is_empty(&self) -> bool {
        self.corpus.is_empty()
    }

    /// Iterator over all resource ids.
    pub fn resource_ids(&self) -> impl Iterator<Item = ResourceId> + '_ {
        (0..self.corpus.len() as u32).map(ResourceId)
    }

    /// The full post sequence of a resource.
    pub fn full_sequence(&self, id: ResourceId) -> &[Post] {
        self.corpus
            .resource(id)
            .map(|r| r.posts.posts())
            .unwrap_or(&[])
    }

    /// The initial (pre-strategy) posts of a resource.
    pub fn initial_sequence(&self, id: ResourceId) -> &[Post] {
        let c = self.initial_posts[id.index()];
        &self.full_sequence(id)[..c]
    }

    /// The posts of a resource that are still "in the future" when strategies
    /// start — the pool a post task on this resource draws from.
    pub fn future_sequence(&self, id: ResourceId) -> &[Post] {
        let c = self.initial_posts[id.index()];
        &self.full_sequence(id)[c..]
    }

    /// The true (latent) tag distribution of a resource.
    pub fn true_distribution(&self, id: ResourceId) -> &Rfd {
        &self.profiles[id.index()].true_distribution
    }

    /// Total number of posts over all full sequences.
    pub fn total_posts(&self) -> usize {
        self.corpus.total_posts()
    }

    /// Total number of initial posts (the "January" posts).
    pub fn total_initial_posts(&self) -> usize {
        self.initial_posts.iter().sum()
    }

    /// Restores internal indexes after deserialization.
    pub fn rebuild_indexes(&mut self) {
        self.corpus.rebuild_indexes();
    }
}

/// Per-resource output of the parallel sampling phase of [`generate_with`]:
/// everything about one resource except the ids of its typo tags, which are
/// assigned in a deterministic sequential pass afterwards.
struct ResourceDraft {
    profile: ResourceProfile,
    posts: Vec<PostDraft>,
    initial: usize,
    leaf: CategoryId,
    name: String,
    description: String,
}

/// Generates a synthetic corpus from the given configuration, using the
/// process-default [`Runtime`] (see `TAGGING_THREADS`) to sample resources in
/// parallel. Output is bit-identical at every thread count — see
/// [`generate_with`].
pub fn generate(config: &GeneratorConfig) -> SyntheticCorpus {
    generate_with(config, &Runtime::from_env())
}

/// Generates a synthetic corpus on an explicit [`Runtime`].
///
/// Randomness is organised so the corpus is a pure function of the
/// configuration, independent of the thread count:
///
/// 1. a cheap sequential prologue builds the topic model, taxonomy and the
///    popularity permutation from the root RNG, and pre-interns every
///    resource's self tag;
/// 2. the expensive per-resource work (profile construction and post-sequence
///    sampling) runs in parallel, each resource on its own RNG seeded by
///    [`SeedSequence::derive`]`(resource index)`;
/// 3. a sequential epilogue interns typo tags in (resource, post, draw) order
///    and assembles the corpus.
pub fn generate_with(config: &GeneratorConfig, runtime: &Runtime) -> SyntheticCorpus {
    assert!(config.num_resources >= 1, "need at least one resource");
    assert!(
        (0.0..=1.0).contains(&config.initial_fraction),
        "initial_fraction must lie in [0, 1]"
    );
    assert!(
        config.mean_posts >= config.min_posts.max(1),
        "mean_posts must be >= min_posts"
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.num_resources;

    let mut corpus = Corpus::new();
    let topic_model =
        TopicModel::build(&mut corpus.tags, config.num_topics, config.vocab_per_topic);

    // ---- Taxonomy: root → topic category → sub-categories -------------------
    // Each sub-category also owns a distinguishing tag that is mixed into the
    // true distribution of the resources assigned to it. This keeps the ground
    // truth (taxonomy distance) and the observable signal (tag overlap) aligned,
    // the property the paper's ODP-based accuracy experiment relies on.
    let mut taxonomy = Taxonomy::new();
    let mut leaves: Vec<Vec<(CategoryId, crate::topics::TopicId)>> = Vec::new();
    let mut subcat_tags: Vec<Vec<tagging_core::model::TagId>> = Vec::new();
    for topic in &topic_model.topics {
        let cat = taxonomy.add_category(taxonomy.root(), format!("Top/{}", topic.name));
        let mut subcats = Vec::with_capacity(config.subcategories_per_topic.max(1));
        let mut tags_for_topic = Vec::with_capacity(config.subcategories_per_topic.max(1));
        for s in 0..config.subcategories_per_topic.max(1) {
            subcats.push((
                taxonomy.add_category(cat, format!("Top/{}/sub-{s}", topic.name)),
                topic.id,
            ));
            tags_for_topic.push(corpus.tags.intern(&format!("{}-sub{s}", topic.name)));
        }
        leaves.push(subcats);
        subcat_tags.push(tags_for_topic);
    }

    // ---- Popularity ranks ---------------------------------------------------
    // Resource ids are assigned popularity ranks through a random permutation so
    // that id order carries no information.
    let zipf = Zipf::new(n, config.popularity_exponent);
    let zipf_weights = zipf.weights();
    let mut rank_of_resource: Vec<usize> = (0..n).collect();
    // Fisher-Yates shuffle driven by the seeded RNG.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        rank_of_resource.swap(i, j);
    }
    let popularity: Vec<f64> = (0..n).map(|i| zipf_weights[rank_of_resource[i]]).collect();

    // ---- Sequence lengths ---------------------------------------------------
    // Every resource gets at least `min_posts`; the remaining post mass is
    // distributed proportionally to popularity, capped at `max_posts`.
    let total_posts_target = config.mean_posts.saturating_mul(n);
    let extra_pool = total_posts_target.saturating_sub(config.min_posts * n) as f64;
    let lengths: Vec<usize> = (0..n)
        .map(|i| {
            let extra = (extra_pool * popularity[i]).round() as usize;
            (config.min_posts + extra).clamp(config.min_posts.max(1), config.max_posts)
        })
        .collect();

    // ---- Profiles, posts, initial counts ------------------------------------
    // Pre-intern the per-resource self tags so the parallel phase never has to
    // touch the shared tag dictionary.
    let self_tags: Vec<tagging_core::model::TagId> = (0..n)
        .map(|i| corpus.tags.intern(&format!("site-{i}")))
        .collect();

    // Parallel phase: one independent RNG per resource, derived from the root
    // seed, so the draft of resource `i` depends only on (config, i) — never on
    // scheduling. The shared model/taxonomy data is read-only here.
    let seeds = SeedSequence::new(config.seed);
    let drafts: Vec<ResourceDraft> = runtime.par_map_indexed(n, |i| {
        draft_resource(
            i,
            lengths[i],
            self_tags[i],
            StdRng::seed_from_u64(seeds.derive(i as u64)),
            &topic_model,
            &leaves,
            &subcat_tags,
            config,
        )
    });

    // Sequential epilogue: assign typo-tag ids in (resource, post, draw) order
    // and assemble the corpus.
    let mut profiles = Vec::with_capacity(n);
    let mut initial_posts = Vec::with_capacity(n);
    let mut typo_counter = 0u64;
    for (i, draft) in drafts.into_iter().enumerate() {
        let id = ResourceId(i as u32);
        let mut posts = PostSequence::new();
        for post_draft in draft.posts {
            let mut tags = post_draft.known;
            for _ in 0..post_draft.typos {
                typo_counter += 1;
                tags.push(corpus.tags.intern(&format!("typo-{typo_counter}")));
            }
            posts.push(Post::new(tags).expect("sampled posts are non-empty"));
        }
        initial_posts.push(draft.initial);
        taxonomy.assign(id, draft.leaf);
        let resource = Resource::new(id, draft.name)
            .with_description(draft.description)
            .with_posts(posts);
        corpus.resources.push(resource);
        profiles.push(draft.profile);
    }

    SyntheticCorpus {
        corpus,
        profiles,
        popularity,
        initial_posts,
        taxonomy,
        config: config.clone(),
    }
}

/// Builds the draft of one resource from its own RNG. Runs on a worker thread;
/// reads the shared model data, writes nothing shared.
#[allow(clippy::too_many_arguments)]
fn draft_resource(
    i: usize,
    seq_len: usize,
    self_tag: tagging_core::model::TagId,
    mut rng: StdRng,
    topic_model: &TopicModel,
    leaves: &[Vec<(CategoryId, TopicId)>],
    subcat_tags: &[Vec<tagging_core::model::TagId>],
    config: &GeneratorConfig,
) -> ResourceDraft {
    let primary = TopicId((rng.gen_range(0..topic_model.num_topics())) as u32);
    let name = format!(
        "www.resource-{i}.example/{}",
        topic_model.topics[primary.index()].name
    );
    let mut profile = build_profile(&mut rng, topic_model, &config.profile, primary, self_tag);

    // Sub-category: a leaf of the primary topic, plus its distinguishing tag
    // mixed into the true distribution (15% of the mass).
    let subcat_index = rng.gen_range(0..leaves[primary.index()].len());
    let (leaf, _) = leaves[primary.index()][subcat_index];
    let subcat_tag = subcat_tags[primary.index()][subcat_index];
    profile.true_distribution = Rfd::from_weights(
        profile
            .true_distribution
            .iter()
            .map(|(t, w)| (t, w * 0.85))
            .chain(std::iter::once((subcat_tag, 0.15))),
    );

    // Early-phase distractor distribution: the first posts of a resource tend
    // to describe tangential aspects (generic tags, a neighbouring topic, the
    // site itself) before the community converges on the real content — the
    // paper's www.myphysicslab.com example, whose early posts were all about
    // Java rather than physics. Early posts are drawn from a 50/50 mixture of
    // the true distribution and this distractor.
    let distractor_topic = profile.secondary_topic.unwrap_or(TopicId(
        ((primary.index() + 1) % topic_model.num_topics()) as u32,
    ));
    let distractor = {
        let other = &topic_model.topics[distractor_topic.index()];
        let other_len = 4.min(other.vocabulary.len());
        let other_total: f64 = other.vocabulary[..other_len].iter().map(|(_, w)| w).sum();
        let global_total: f64 = topic_model.global_tags.iter().map(|(_, w)| w).sum();
        Rfd::from_weights(
            other.vocabulary[..other_len]
                .iter()
                .map(|&(t, w)| (t, 0.4 * w / other_total))
                .chain(
                    topic_model
                        .global_tags
                        .iter()
                        .map(|&(t, w)| (t, 0.4 * w / global_total)),
                )
                .chain(std::iter::once((self_tag, 0.2))),
        )
    };
    let early_distribution = Rfd::from_weights(
        profile
            .true_distribution
            .iter()
            .map(|(t, w)| (t, 0.5 * w))
            .chain(distractor.iter().map(|(t, w)| (t, 0.5 * w))),
    );
    let early_len = (seq_len / 4).clamp(5, 15);

    // Posts of the full sequence (typo-tag ids deferred, see [`PostDraft`]).
    // Both samplers are built once up front: every post re-uses one of the two
    // prepared weighted-index tables instead of rebuilding it per draw.
    let early_sampler = PostSampler::new(&early_distribution);
    let true_sampler = PostSampler::new(&profile.true_distribution);
    let posts: Vec<PostDraft> = (0..seq_len)
        .map(|j| {
            let sampler = if j < early_len {
                &early_sampler
            } else {
                &true_sampler
            };
            sampler.sample_draft(&mut rng, config.max_tags_per_post, config.noise_rate)
        })
        .collect();

    // Initial ("January") count: on average `initial_fraction` of the
    // sequence, but with a squared-uniform multiplier so that a sizeable
    // share of resources start heavily under-tagged, as in the paper.
    let u: f64 = rng.gen_range(0.0..1.0);
    let multiplier = 3.0 * u * u; // mean 1, mass concentrated near 0
    let c = ((seq_len as f64) * config.initial_fraction * multiplier).round() as usize;
    let initial = c.clamp(1, seq_len.saturating_sub(1).max(1));

    let description = match profile.secondary_topic {
        Some(sec) => format!(
            "{} / {}",
            topic_model.topics[primary.index()].name,
            topic_model.topics[sec.index()].name
        ),
        None => topic_model.topics[primary.index()].name.clone(),
    };

    ResourceDraft {
        profile,
        posts,
        initial,
        leaf,
        name,
        description,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagging_core::similarity::cosine;
    use tagging_core::stability::{StabilityAnalyzer, StabilityParams};

    fn small_corpus() -> SyntheticCorpus {
        generate(&GeneratorConfig::small(60, 7))
    }

    #[test]
    fn generates_requested_number_of_resources() {
        let sc = small_corpus();
        assert_eq!(sc.len(), 60);
        assert_eq!(sc.profiles.len(), 60);
        assert_eq!(sc.popularity.len(), 60);
        assert_eq!(sc.initial_posts.len(), 60);
        assert_eq!(sc.taxonomy.assigned_count(), 60);
        assert!(!sc.is_empty());
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = generate(&GeneratorConfig::small(40, 99));
        let b = generate(&GeneratorConfig::small(40, 99));
        assert_eq!(a.total_posts(), b.total_posts());
        assert_eq!(a.initial_posts, b.initial_posts);
        for id in a.resource_ids() {
            assert_eq!(a.full_sequence(id), b.full_sequence(id));
        }
        let c = generate(&GeneratorConfig::small(40, 100));
        assert_ne!(a.initial_posts, c.initial_posts);
    }

    #[test]
    fn sequence_lengths_respect_bounds_and_mean() {
        let config = GeneratorConfig::small(80, 3);
        let sc = generate(&config);
        let lengths: Vec<usize> = sc
            .resource_ids()
            .map(|id| sc.full_sequence(id).len())
            .collect();
        for &len in &lengths {
            assert!(len >= config.min_posts);
            assert!(len <= config.max_posts);
        }
        let mean = lengths.iter().sum::<usize>() as f64 / lengths.len() as f64;
        assert!(
            (mean - config.mean_posts as f64).abs() < config.mean_posts as f64 * 0.35,
            "mean sequence length {mean} far from target {}",
            config.mean_posts
        );
    }

    #[test]
    fn initial_posts_are_a_proper_nonempty_prefix() {
        let sc = small_corpus();
        for id in sc.resource_ids() {
            let c = sc.initial_posts[id.index()];
            assert!(c >= 1);
            assert!(c < sc.full_sequence(id).len());
            assert_eq!(sc.initial_sequence(id).len(), c);
            assert_eq!(
                sc.initial_sequence(id).len() + sc.future_sequence(id).len(),
                sc.full_sequence(id).len()
            );
        }
    }

    #[test]
    fn popularity_is_a_distribution() {
        let sc = small_corpus();
        let total: f64 = sc.popularity.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(sc.popularity.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn initial_post_skew_leaves_some_resources_under_tagged() {
        let sc = generate(&GeneratorConfig::small(200, 5));
        let under = sc.initial_posts.iter().filter(|&&c| c <= 10).count();
        // The paper reports ~25% under-tagged; the synthetic corpus should have a
        // substantial under-tagged share too (we only require a loose band here).
        let frac = under as f64 / sc.len() as f64;
        assert!(frac > 0.10, "only {frac} of resources start under-tagged");
        assert!(frac < 0.90);
    }

    #[test]
    fn rfd_of_long_sequences_approaches_true_distribution() {
        let sc = small_corpus();
        // Pick the resource with the longest sequence: its empirical rfd should
        // be close to its latent true distribution (typo noise keeps it < 1).
        let id = sc
            .resource_ids()
            .max_by_key(|id| sc.full_sequence(*id).len())
            .unwrap();
        let posts = sc.full_sequence(id);
        let rfd = tagging_core::rfd::rfd_of_prefix(posts, posts.len());
        let sim = cosine(&rfd, sc.true_distribution(id));
        assert!(sim > 0.9, "similarity to true distribution is only {sim}");
    }

    #[test]
    fn most_resources_reach_a_stable_point() {
        let sc = generate(&GeneratorConfig::small(50, 11));
        let analyzer = StabilityAnalyzer::new(StabilityParams::new(10, 0.995));
        let stable = sc
            .resource_ids()
            .filter(|id| analyzer.stable_point(sc.full_sequence(*id)).is_some())
            .count();
        assert!(
            stable as f64 / sc.len() as f64 > 0.8,
            "only {stable}/{} resources stabilise",
            sc.len()
        );
    }

    #[test]
    fn taxonomy_groups_same_topic_resources_closer() {
        let sc = generate(&GeneratorConfig::small(100, 13));
        // Average taxonomy distance between same-primary-topic pairs should be
        // smaller than between different-topic pairs.
        let mut same = Vec::new();
        let mut diff = Vec::new();
        let ids: Vec<ResourceId> = sc.resource_ids().collect();
        for (ai, &a) in ids.iter().enumerate() {
            for &b in ids.iter().skip(ai + 1) {
                let d = sc.taxonomy.resource_distance(a, b).unwrap() as f64;
                if sc.profiles[a.index()].primary_topic == sc.profiles[b.index()].primary_topic {
                    same.push(d);
                } else {
                    diff.push(d);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(mean(&same) < mean(&diff));
    }

    #[test]
    fn full_web_config_produces_heavy_tail() {
        let sc = generate(&GeneratorConfig::full_web(500, 17));
        let lengths: Vec<usize> = sc
            .resource_ids()
            .map(|id| sc.full_sequence(id).len())
            .collect();
        let singletons = lengths.iter().filter(|&&l| l <= 2).count();
        let max = *lengths.iter().max().unwrap();
        assert!(
            singletons > 100,
            "expected many rarely-tagged resources, got {singletons}"
        );
        assert!(max > 50, "expected a popular head, max sequence is {max}");
    }

    #[test]
    #[should_panic(expected = "at least one resource")]
    fn generate_rejects_empty_config() {
        let mut cfg = GeneratorConfig::small(10, 1);
        cfg.num_resources = 0;
        generate(&cfg);
    }
}
