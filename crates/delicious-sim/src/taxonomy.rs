//! Synthetic category taxonomy — the stand-in for the Open Directory Project
//! (dmoz) ground truth used by the paper's §V-C.2 accuracy experiment.
//!
//! The paper ranks all resource pairs by the cosine similarity of their rfds and
//! compares that ranking (via Kendall's τ) against a ground-truth ranking derived
//! from the resources' distance in the ODP category hierarchy.
//!
//! We build a small category **tree** (root → topic categories → sub-categories)
//! and attach every resource to a leaf determined by its latent topics: resources
//! sharing a primary topic land in the same subtree, so tree distance correlates
//! with true content similarity — the property the experiment relies on.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use tagging_core::model::ResourceId;

/// Identifier of a node in the [`Taxonomy`] tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CategoryId(pub u32);

impl CategoryId {
    /// Returns the id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A node of the category tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Category {
    /// Node id.
    pub id: CategoryId,
    /// Human-readable name (e.g. "Science/Physics").
    pub name: String,
    /// Parent node; `None` for the root.
    pub parent: Option<CategoryId>,
    /// Depth of the node (root = 0).
    pub depth: usize,
}

/// A rooted category tree with resources attached to its nodes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Taxonomy {
    categories: Vec<Category>,
    assignments: HashMap<ResourceId, CategoryId>,
}

impl Taxonomy {
    /// Creates a taxonomy containing only a root node named "Top".
    pub fn new() -> Self {
        let mut t = Self {
            categories: Vec::new(),
            assignments: HashMap::new(),
        };
        t.categories.push(Category {
            id: CategoryId(0),
            name: "Top".to_string(),
            parent: None,
            depth: 0,
        });
        t
    }

    /// The root node id.
    pub fn root(&self) -> CategoryId {
        CategoryId(0)
    }

    /// Adds a child category under `parent` and returns its id.
    ///
    /// Panics when `parent` does not exist (taxonomy construction is an internal,
    /// programmer-controlled step; a malformed tree is a bug, not runtime input).
    pub fn add_category(&mut self, parent: CategoryId, name: impl Into<String>) -> CategoryId {
        let parent_depth = self
            .categories
            .get(parent.index())
            .expect("parent category exists")
            .depth;
        let id = CategoryId(self.categories.len() as u32);
        self.categories.push(Category {
            id,
            name: name.into(),
            parent: Some(parent),
            depth: parent_depth + 1,
        });
        id
    }

    /// Number of categories (including the root).
    pub fn len(&self) -> usize {
        self.categories.len()
    }

    /// True when only the root exists and nothing is assigned.
    pub fn is_empty(&self) -> bool {
        self.categories.len() <= 1 && self.assignments.is_empty()
    }

    /// Access a category by id.
    pub fn category(&self, id: CategoryId) -> Option<&Category> {
        self.categories.get(id.index())
    }

    /// Assigns a resource to a category (replacing any previous assignment).
    pub fn assign(&mut self, resource: ResourceId, category: CategoryId) {
        assert!(
            category.index() < self.categories.len(),
            "cannot assign to a nonexistent category"
        );
        self.assignments.insert(resource, category);
    }

    /// The category a resource is assigned to, if any.
    pub fn assignment(&self, resource: ResourceId) -> Option<CategoryId> {
        self.assignments.get(&resource).copied()
    }

    /// Number of assigned resources.
    pub fn assigned_count(&self) -> usize {
        self.assignments.len()
    }

    /// Path from a category up to the root (inclusive), starting at the category.
    fn path_to_root(&self, mut id: CategoryId) -> Vec<CategoryId> {
        let mut path = vec![id];
        while let Some(parent) = self.categories[id.index()].parent {
            path.push(parent);
            id = parent;
        }
        path
    }

    /// Tree distance (number of edges) between two categories.
    pub fn category_distance(&self, a: CategoryId, b: CategoryId) -> usize {
        if a == b {
            return 0;
        }
        let path_a = self.path_to_root(a);
        let path_b = self.path_to_root(b);
        // Find the lowest common ancestor by walking the root-ward paths.
        let set_a: HashMap<CategoryId, usize> =
            path_a.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        for (steps_b, &cat) in path_b.iter().enumerate() {
            if let Some(&steps_a) = set_a.get(&cat) {
                return steps_a + steps_b;
            }
        }
        // Both paths end at the root, so a common ancestor always exists.
        unreachable!("all categories share the root ancestor")
    }

    /// Tree distance between the categories of two resources.
    ///
    /// Returns `None` when either resource is unassigned.
    pub fn resource_distance(&self, a: ResourceId, b: ResourceId) -> Option<usize> {
        let ca = self.assignment(a)?;
        let cb = self.assignment(b)?;
        Some(self.category_distance(ca, cb))
    }

    /// Ground-truth similarity of two resources in `[0, 1]`: `1 / (1 + distance)`.
    ///
    /// The paper only needs the induced *ranking* of pairs, so any strictly
    /// decreasing transform of tree distance works; the reciprocal keeps values
    /// bounded and easy to reason about. Unassigned resources get similarity 0.
    pub fn ground_truth_similarity(&self, a: ResourceId, b: ResourceId) -> f64 {
        match self.resource_distance(a, b) {
            Some(d) => 1.0 / (1.0 + d as f64),
            None => 0.0,
        }
    }

    /// Iterates over `(resource, category)` assignments in unspecified order.
    pub fn assignments(&self) -> impl Iterator<Item = (ResourceId, CategoryId)> + '_ {
        self.assignments.iter().map(|(&r, &c)| (r, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_taxonomy() -> (Taxonomy, CategoryId, CategoryId, CategoryId, CategoryId) {
        // Top ── science ── physics
        //    │           └─ chemistry
        //    └─ computing ── java
        let mut t = Taxonomy::new();
        let science = t.add_category(t.root(), "Science");
        let physics = t.add_category(science, "Science/Physics");
        let chemistry = t.add_category(science, "Science/Chemistry");
        let computing = t.add_category(t.root(), "Computing");
        let java = t.add_category(computing, "Computing/Java");
        (t, physics, chemistry, java, science)
    }

    #[test]
    fn new_taxonomy_has_root_only() {
        let t = Taxonomy::new();
        assert_eq!(t.len(), 1);
        assert!(t.is_empty());
        assert_eq!(t.category(t.root()).unwrap().depth, 0);
        assert!(t.category(t.root()).unwrap().parent.is_none());
    }

    #[test]
    fn depths_follow_parents() {
        let (t, physics, _chem, java, science) = sample_taxonomy();
        assert_eq!(t.category(science).unwrap().depth, 1);
        assert_eq!(t.category(physics).unwrap().depth, 2);
        assert_eq!(t.category(java).unwrap().depth, 2);
    }

    #[test]
    fn category_distance_via_lca() {
        let (t, physics, chemistry, java, science) = sample_taxonomy();
        assert_eq!(t.category_distance(physics, physics), 0);
        assert_eq!(t.category_distance(physics, chemistry), 2);
        assert_eq!(t.category_distance(physics, science), 1);
        // physics → science → Top → computing → java = 4 edges
        assert_eq!(t.category_distance(physics, java), 4);
        // symmetric
        assert_eq!(t.category_distance(java, physics), 4);
    }

    #[test]
    fn resource_distance_and_similarity() {
        let (mut t, physics, chemistry, java, _science) = sample_taxonomy();
        let r0 = ResourceId(0);
        let r1 = ResourceId(1);
        let r2 = ResourceId(2);
        t.assign(r0, physics);
        t.assign(r1, chemistry);
        t.assign(r2, java);
        assert_eq!(t.resource_distance(r0, r1), Some(2));
        assert_eq!(t.resource_distance(r0, r2), Some(4));
        assert_eq!(t.resource_distance(r0, ResourceId(9)), None);
        assert!(t.ground_truth_similarity(r0, r1) > t.ground_truth_similarity(r0, r2));
        assert_eq!(t.ground_truth_similarity(r0, ResourceId(9)), 0.0);
        assert!((t.ground_truth_similarity(r0, r0) - 1.0).abs() < 1e-12);
        assert_eq!(t.assigned_count(), 3);
    }

    #[test]
    fn reassignment_replaces() {
        let (mut t, physics, chemistry, _java, _science) = sample_taxonomy();
        let r = ResourceId(5);
        t.assign(r, physics);
        t.assign(r, chemistry);
        assert_eq!(t.assignment(r), Some(chemistry));
        assert_eq!(t.assigned_count(), 1);
    }

    #[test]
    #[should_panic(expected = "nonexistent category")]
    fn assign_to_unknown_category_panics() {
        let mut t = Taxonomy::new();
        t.assign(ResourceId(0), CategoryId(99));
    }

    #[test]
    fn assignments_iterator_covers_all() {
        let (mut t, physics, chemistry, java, _science) = sample_taxonomy();
        t.assign(ResourceId(0), physics);
        t.assign(ResourceId(1), chemistry);
        t.assign(ResourceId(2), java);
        let mut all: Vec<_> = t.assignments().collect();
        all.sort_by_key(|(r, _)| r.0);
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], (ResourceId(0), physics));
    }
}
