//! Latent topic model behind the synthetic corpus.
//!
//! Each synthetic resource is "about" one primary topic (physics, java, video
//! editing, …) and optionally blends in a secondary topic. A topic owns a
//! vocabulary of tags with Zipf-decaying weights; a resource's **true tag
//! distribution** mixes
//!
//! * its primary topic's vocabulary (most of the mass),
//! * a secondary topic's vocabulary (content that spans areas, like the paper's
//!   www.myphysicslab.com which is both *physics* and *java*),
//! * a handful of globally popular tags (`cool`, `toread`, …), and
//! * a resource-specific tag (its own name), mimicking self-referential tags.
//!
//! Posts are then drawn from the true distribution (plus typo noise) by the
//! generator, so a resource's rfd converges to (a noisy version of) its true
//! distribution as it accumulates posts — exactly the convergence behaviour of
//! the paper's Figure 1(a). The number of distinct high-weight tags controls how
//! many posts a resource needs before its rfd stabilises, which is how we
//! reproduce the paper's spread of stable points (50–250 posts).

use rand::Rng;
use serde::{Deserialize, Serialize};

use tagging_core::model::{TagDictionary, TagId};
use tagging_core::rfd::Rfd;

use crate::zipf::WeightedIndex;

/// Identifier of a topic within a [`TopicModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TopicId(pub u32);

impl TopicId {
    /// Returns the id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A topic: a named vocabulary of tags with decaying weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topic {
    /// Topic id.
    pub id: TopicId,
    /// Human-readable name, e.g. "physics".
    pub name: String,
    /// Tags of the topic with their (unnormalised) weights, heaviest first.
    pub vocabulary: Vec<(TagId, f64)>,
}

/// Names used for the synthetic topics. Chosen to echo the paper's case studies
/// (physics, java, video editing, photo sharing, architecture news, sports, …).
pub const TOPIC_NAMES: &[&str] = &[
    "physics",
    "java",
    "video-editing",
    "video-sharing",
    "photo-editing",
    "photo-sharing",
    "architecture",
    "news",
    "sports",
    "travel",
    "maps",
    "music",
    "cooking",
    "politics",
    "machine-learning",
    "databases",
    "security",
    "design",
    "finance",
    "health",
];

/// Globally popular tags that show up on resources of every topic.
pub const GLOBAL_TAGS: &[&str] = &["cool", "toread", "reference", "web", "free", "tools"];

/// The full latent model: topics, global tags and the shared tag dictionary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopicModel {
    /// All topics.
    pub topics: Vec<Topic>,
    /// The globally popular tags and their weights.
    pub global_tags: Vec<(TagId, f64)>,
}

impl TopicModel {
    /// Builds a topic model with `num_topics` topics of `vocab_per_topic` tags
    /// each, interning every tag into `dict`.
    ///
    /// Topic vocabularies are disjoint (tag strings are prefixed with the topic
    /// name) so that topical similarity is meaningful; the global tags are
    /// shared by all resources.
    pub fn build(dict: &mut TagDictionary, num_topics: usize, vocab_per_topic: usize) -> Self {
        assert!(num_topics >= 1, "need at least one topic");
        assert!(vocab_per_topic >= 2, "each topic needs at least two tags");
        let mut topics = Vec::with_capacity(num_topics);
        for t in 0..num_topics {
            let base_name = TOPIC_NAMES[t % TOPIC_NAMES.len()];
            let name = if t < TOPIC_NAMES.len() {
                base_name.to_string()
            } else {
                format!("{base_name}-{}", t / TOPIC_NAMES.len())
            };
            let mut vocabulary = Vec::with_capacity(vocab_per_topic);
            for v in 0..vocab_per_topic {
                let tag_name = if v == 0 {
                    name.clone()
                } else {
                    format!("{name}-{v}")
                };
                let id = dict.intern(&tag_name);
                // Zipf-decaying weight within the topic vocabulary.
                let weight = 1.0 / (v as f64 + 1.0).powf(1.15);
                vocabulary.push((id, weight));
            }
            topics.push(Topic {
                id: TopicId(t as u32),
                name,
                vocabulary,
            });
        }
        let global_tags = GLOBAL_TAGS
            .iter()
            .enumerate()
            .map(|(i, name)| (dict.intern(name), 1.0 / (i as f64 + 1.0)))
            .collect();
        Self {
            topics,
            global_tags,
        }
    }

    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.topics.len()
    }

    /// Access a topic by id.
    pub fn topic(&self, id: TopicId) -> Option<&Topic> {
        self.topics.get(id.index())
    }
}

/// The latent profile of one synthetic resource: which topics it is about and
/// its true tag distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResourceProfile {
    /// Primary topic.
    pub primary_topic: TopicId,
    /// Optional secondary topic (resources with multi-dimensional content).
    pub secondary_topic: Option<TopicId>,
    /// The true tag distribution posts are drawn from.
    pub true_distribution: Rfd,
    /// Number of "significant" tags (weight above 1% of the maximum); a proxy
    /// for how many posts the resource needs to stabilise.
    pub complexity: usize,
}

/// Parameters controlling how a resource profile mixes its components.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProfileParams {
    /// Probability that a resource blends in a secondary topic.
    pub secondary_topic_prob: f64,
    /// Mass given to the secondary topic when present.
    pub secondary_topic_mass: f64,
    /// Mass given to the globally popular tags.
    pub global_tag_mass: f64,
    /// Mass given to the resource's own "self" tag.
    pub self_tag_mass: f64,
    /// Number of top vocabulary tags of the primary topic actually used by a
    /// *simple* resource; complex resources use the full vocabulary.
    pub simple_vocab_size: usize,
    /// Probability that a resource is "complex" (uses the full topic vocabulary
    /// and therefore needs more posts to stabilise).
    pub complex_resource_prob: f64,
}

impl Default for ProfileParams {
    fn default() -> Self {
        Self {
            secondary_topic_prob: 0.25,
            secondary_topic_mass: 0.25,
            global_tag_mass: 0.10,
            self_tag_mass: 0.05,
            simple_vocab_size: 6,
            complex_resource_prob: 0.4,
        }
    }
}

/// Builds the latent profile of one resource.
///
/// `self_tag` is a tag unique to the resource (its name); `rng` drives the
/// random choices (secondary topic, complexity).
pub fn build_profile<R: Rng + ?Sized>(
    rng: &mut R,
    model: &TopicModel,
    params: &ProfileParams,
    primary_topic: TopicId,
    self_tag: TagId,
) -> ResourceProfile {
    let primary = model.topic(primary_topic).expect("primary topic exists");

    let complex = rng.gen_bool(params.complex_resource_prob);
    let vocab_len = if complex {
        primary.vocabulary.len()
    } else {
        params.simple_vocab_size.min(primary.vocabulary.len())
    };

    let secondary_topic = if model.num_topics() > 1 && rng.gen_bool(params.secondary_topic_prob) {
        // Pick a different topic uniformly.
        loop {
            let t = TopicId(rng.gen_range(0..model.num_topics() as u32));
            if t != primary_topic {
                break Some(t);
            }
        }
    } else {
        None
    };

    let mut weights: Vec<(TagId, f64)> = Vec::new();
    let primary_mass = 1.0
        - params.global_tag_mass
        - params.self_tag_mass
        - if secondary_topic.is_some() {
            params.secondary_topic_mass
        } else {
            0.0
        };

    let primary_total: f64 = primary.vocabulary[..vocab_len].iter().map(|(_, w)| w).sum();
    for &(tag, w) in &primary.vocabulary[..vocab_len] {
        weights.push((tag, primary_mass * w / primary_total));
    }

    if let Some(sec) = secondary_topic {
        let topic = model.topic(sec).expect("secondary topic exists");
        let sec_len = params.simple_vocab_size.min(topic.vocabulary.len());
        let sec_total: f64 = topic.vocabulary[..sec_len].iter().map(|(_, w)| w).sum();
        for &(tag, w) in &topic.vocabulary[..sec_len] {
            weights.push((tag, params.secondary_topic_mass * w / sec_total));
        }
    }

    let global_total: f64 = model.global_tags.iter().map(|(_, w)| w).sum();
    for &(tag, w) in &model.global_tags {
        weights.push((tag, params.global_tag_mass * w / global_total));
    }

    weights.push((self_tag, params.self_tag_mass));

    let true_distribution = Rfd::from_weights(weights);
    let max_weight = true_distribution
        .iter()
        .map(|(_, w)| w)
        .fold(0.0f64, f64::max);
    let complexity = true_distribution
        .iter()
        .filter(|(_, w)| *w >= 0.01 * max_weight)
        .count();

    ResourceProfile {
        primary_topic,
        secondary_topic,
        true_distribution,
        complexity,
    }
}

/// One sampled post before typo tags have been assigned their ids: the known
/// tags drawn from the distribution plus the number of fresh "typo" tags.
///
/// Typo tags get globally-unique names (`typo-1`, `typo-2`, …), so their ids
/// depend on how many typos *other* resources produced before them. Deferring
/// the interning lets the corpus generator sample all resources in parallel
/// and assign typo ids in one deterministic sequential pass afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostDraft {
    /// Tags drawn from the distribution (unsorted; may contain duplicates —
    /// [`tagging_core::model::Post::new`] normalises).
    pub known: Vec<TagId>,
    /// Number of fresh typo tags to append, in draw order.
    pub typos: usize,
}

/// A tag distribution prepared for repeated post sampling: the weighted-index
/// table is built once, then reused for every post drawn from the same
/// distribution (a resource draws ~100 posts from just two distributions, so
/// the per-post rebuild was the generator's main avoidable cost).
#[derive(Debug, Clone)]
pub struct PostSampler {
    entries: Vec<(TagId, f64)>,
    sampler: WeightedIndex,
}

impl PostSampler {
    /// Prepares a distribution for sampling. Consumes no randomness.
    pub fn new(distribution: &Rfd) -> Self {
        let entries: Vec<(TagId, f64)> = distribution.iter().collect();
        let weights: Vec<f64> = entries.iter().map(|(_, w)| *w).collect();
        let sampler = WeightedIndex::new(&weights).expect("true distribution is non-empty");
        Self { entries, sampler }
    }

    /// Samples one post draft (see [`PostDraft`]): 1–`max_tags` draws, each
    /// replaced by a fresh typo tag with probability `noise_rate`. Pure in
    /// `rng` — it never touches a tag dictionary, so it can run on any thread.
    pub fn sample_draft<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        max_tags: usize,
        noise_rate: f64,
    ) -> PostDraft {
        // Real del.icio.us posts contain a handful of tags; 1..=max_tags with
        // a bias towards 2-3 tags.
        let num_tags = 1 + rng.gen_range(0..max_tags.max(1));
        let mut known = Vec::with_capacity(num_tags);
        let mut typos = 0;
        for _ in 0..num_tags {
            if noise_rate > 0.0 && rng.gen_bool(noise_rate) {
                // A typo: a brand-new tag that will (practically) never repeat.
                typos += 1;
            } else {
                let idx = self.sampler.sample(rng);
                known.push(self.entries[idx].0);
            }
        }
        PostDraft { known, typos }
    }
}

/// Samples one post (a set of 1–`max_tags` distinct tags) from a true tag
/// distribution, with a per-tag probability `noise_rate` of replacing a sampled
/// tag with a fresh "typo" tag interned on the fly.
///
/// Sequential convenience over [`PostSampler`]; the corpus generator uses the
/// draft form directly so sampling can run in parallel. Call sites that draw
/// many posts from one distribution should hold a [`PostSampler`] instead of
/// paying the table build on every call.
pub fn sample_post<R: Rng + ?Sized>(
    rng: &mut R,
    dict: &mut TagDictionary,
    distribution: &Rfd,
    max_tags: usize,
    noise_rate: f64,
    typo_counter: &mut u64,
) -> Vec<TagId> {
    let draft = PostSampler::new(distribution).sample_draft(rng, max_tags, noise_rate);
    let mut tags = draft.known;
    for _ in 0..draft.typos {
        *typo_counter += 1;
        tags.push(dict.intern(&format!("typo-{typo_counter}")));
    }
    tags.sort_unstable();
    tags.dedup();
    tags
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> (TagDictionary, TopicModel) {
        let mut dict = TagDictionary::new();
        let model = TopicModel::build(&mut dict, 8, 12);
        (dict, model)
    }

    #[test]
    fn topic_model_builds_disjoint_vocabularies() {
        let (dict, model) = model();
        assert_eq!(model.num_topics(), 8);
        // 8 topics × 12 tags + 6 global tags.
        assert_eq!(dict.len(), 8 * 12 + GLOBAL_TAGS.len());
        // Vocabularies are disjoint.
        let mut seen = std::collections::HashSet::new();
        for topic in &model.topics {
            for (tag, w) in &topic.vocabulary {
                assert!(*w > 0.0);
                assert!(seen.insert(*tag), "tag {tag} shared between topics");
            }
        }
    }

    #[test]
    fn topic_names_extend_beyond_builtin_list() {
        let mut dict = TagDictionary::new();
        let model = TopicModel::build(&mut dict, TOPIC_NAMES.len() + 3, 4);
        assert_eq!(model.num_topics(), TOPIC_NAMES.len() + 3);
        // The wrapped-around topics get disambiguated names.
        let last = &model.topics[TOPIC_NAMES.len()];
        assert!(last.name.contains('-'), "name: {}", last.name);
    }

    #[test]
    #[should_panic(expected = "at least one topic")]
    fn topic_model_rejects_zero_topics() {
        let mut dict = TagDictionary::new();
        TopicModel::build(&mut dict, 0, 5);
    }

    #[test]
    fn profile_distribution_is_normalised_and_uses_primary_topic() {
        let (mut dict, model) = model();
        let self_tag = dict.intern("www.myphysicslab.com");
        let mut rng = StdRng::seed_from_u64(3);
        let profile = build_profile(
            &mut rng,
            &model,
            &ProfileParams::default(),
            TopicId(0),
            self_tag,
        );
        assert!((profile.true_distribution.total_mass() - 1.0).abs() < 1e-9);
        assert!(profile.complexity >= 2);
        // The heaviest primary tag carries substantial mass.
        let head_tag = model.topics[0].vocabulary[0].0;
        assert!(profile.true_distribution.get(head_tag) > 0.1);
        // The self tag is present.
        assert!(profile.true_distribution.get(self_tag) > 0.0);
    }

    #[test]
    fn complex_resources_have_larger_support() {
        let (mut dict, model) = model();
        let params = ProfileParams {
            complex_resource_prob: 1.0,
            secondary_topic_prob: 0.0,
            ..ProfileParams::default()
        };
        let simple_params = ProfileParams {
            complex_resource_prob: 0.0,
            secondary_topic_prob: 0.0,
            ..ProfileParams::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let t1 = dict.intern("r-complex");
        let t2 = dict.intern("r-simple");
        let complex = build_profile(&mut rng, &model, &params, TopicId(1), t1);
        let simple = build_profile(&mut rng, &model, &simple_params, TopicId(1), t2);
        assert!(
            complex.true_distribution.support() > simple.true_distribution.support(),
            "complex {} vs simple {}",
            complex.true_distribution.support(),
            simple.true_distribution.support()
        );
    }

    #[test]
    fn secondary_topic_never_equals_primary() {
        let (mut dict, model) = model();
        let params = ProfileParams {
            secondary_topic_prob: 1.0,
            ..ProfileParams::default()
        };
        let mut rng = StdRng::seed_from_u64(21);
        for i in 0..50 {
            let tag = dict.intern(&format!("res-{i}"));
            let primary = TopicId(i % model.num_topics() as u32);
            let profile = build_profile(&mut rng, &model, &params, primary, tag);
            assert_eq!(profile.primary_topic, primary);
            assert_ne!(profile.secondary_topic, Some(primary));
            assert!(profile.secondary_topic.is_some());
        }
    }

    #[test]
    fn sample_post_draws_from_distribution() {
        let (mut dict, model) = model();
        let self_tag = dict.intern("r0");
        let mut rng = StdRng::seed_from_u64(5);
        let profile = build_profile(
            &mut rng,
            &model,
            &ProfileParams::default(),
            TopicId(2),
            self_tag,
        );
        let mut typos = 0u64;
        for _ in 0..200 {
            let tags = sample_post(
                &mut rng,
                &mut dict,
                &profile.true_distribution,
                4,
                0.0,
                &mut typos,
            );
            assert!(!tags.is_empty());
            assert!(tags.len() <= 4);
            for t in &tags {
                assert!(
                    profile.true_distribution.get(*t) > 0.0,
                    "tag outside support"
                );
            }
        }
        assert_eq!(typos, 0);
    }

    #[test]
    fn sample_post_noise_introduces_fresh_tags() {
        let (mut dict, model) = model();
        let self_tag = dict.intern("r0");
        let mut rng = StdRng::seed_from_u64(6);
        let profile = build_profile(
            &mut rng,
            &model,
            &ProfileParams::default(),
            TopicId(0),
            self_tag,
        );
        let before = dict.len();
        let mut typos = 0u64;
        for _ in 0..300 {
            sample_post(
                &mut rng,
                &mut dict,
                &profile.true_distribution,
                3,
                0.2,
                &mut typos,
            );
        }
        assert!(typos > 0);
        assert!(dict.len() > before);
    }
}
