//! Dataset statistics used by the paper's introduction and §V-A.
//!
//! The paper motivates incentive-based tagging with a handful of aggregate
//! statistics of the del.icio.us dump:
//!
//! * the distribution of posts per resource is extremely skewed (Figure 1(b));
//! * only ~7% of the sampled URLs passed their stable points, yet those URLs
//!   received ~48% of all posts — those posts are "wasted";
//! * ~25% of the URLs are under-tagged (≤ 10 posts);
//! * redirecting ~1% of the wasted posts would lift every under-tagged URL past
//!   its unstable point;
//! * stable points range from ~50 to ~250 posts, averaging ~112; a typical
//!   unstable point is ~10 posts.
//!
//! [`CorpusStatistics`] computes the equivalents of all of these on a
//! [`SyntheticCorpus`], and [`PostCountHistogram`] produces the log-binned
//! histogram behind Figure 1(b).

use serde::{Deserialize, Serialize};

use tagging_core::model::ResourceId;
use tagging_core::stability::{StabilityAnalyzer, StabilityParams};

use crate::generator::SyntheticCorpus;

/// Log-binned histogram of posts-per-resource (Figure 1(b)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PostCountHistogram {
    /// `(bin lower bound, bin upper bound, number of resources)` triples; bins
    /// are powers of `base`.
    pub bins: Vec<(usize, usize, usize)>,
    /// Logarithm base of the binning (the paper's plot is log-log base 10).
    pub base: usize,
}

impl PostCountHistogram {
    /// Builds the histogram of full-sequence lengths with the given log base.
    pub fn from_corpus(corpus: &SyntheticCorpus, base: usize) -> Self {
        let lengths = corpus
            .resource_ids()
            .map(|id| corpus.full_sequence(id).len());
        Self::from_lengths(lengths, base)
    }

    /// Builds the histogram from raw per-resource post counts.
    pub fn from_lengths<I: IntoIterator<Item = usize>>(lengths: I, base: usize) -> Self {
        assert!(base >= 2, "the histogram base must be at least 2");
        let lengths: Vec<usize> = lengths.into_iter().collect();
        let max = lengths.iter().copied().max().unwrap_or(0);
        let mut bins = Vec::new();
        let mut lower = 1usize;
        while lower <= max.max(1) {
            let upper = lower.saturating_mul(base).saturating_sub(1);
            let count = lengths
                .iter()
                .filter(|&&l| l >= lower && l <= upper)
                .count();
            bins.push((lower, upper, count));
            lower = lower.saturating_mul(base);
        }
        Self { bins, base }
    }

    /// Total number of resources covered by the histogram.
    pub fn total(&self) -> usize {
        self.bins.iter().map(|(_, _, c)| c).sum()
    }

    /// Returns true when the head bins (few posts) hold more resources than the
    /// tail bins — the qualitative property of Figure 1(b).
    pub fn is_heavy_tailed(&self) -> bool {
        if self.bins.len() < 2 {
            return false;
        }
        let head = self.bins.first().map(|(_, _, c)| *c).unwrap_or(0);
        let tail = self.bins.last().map(|(_, _, c)| *c).unwrap_or(0);
        head > tail
    }
}

/// Aggregate statistics of a synthetic corpus, mirroring the numbers quoted in
/// the paper's introduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusStatistics {
    /// Number of resources.
    pub num_resources: usize,
    /// Total posts over full sequences.
    pub total_posts: usize,
    /// Total posts in the initial ("January") state.
    pub total_initial_posts: usize,
    /// Mean posts per resource over full sequences.
    pub mean_posts: f64,
    /// Mean initial posts per resource.
    pub mean_initial_posts: f64,
    /// Per-resource stable points (None when a resource never stabilises).
    pub stable_points: Vec<Option<usize>>,
    /// Mean stable point over resources that stabilise.
    pub mean_stable_point: f64,
    /// Number of resources whose *initial* post count already exceeds their
    /// stable point (the paper's "over-tagged" resources, ~7%).
    pub over_tagged_initial: usize,
    /// Number of resources whose initial post count is at or below the
    /// under-tagged threshold (the paper's ≤10-post rule, ~25%).
    pub under_tagged_initial: usize,
    /// The under-tagged threshold used (posts).
    pub under_tagged_threshold: usize,
    /// Number of full-sequence posts that arrived *after* their resource's
    /// stable point — the paper's "wasted" posts (~48%).
    pub wasted_posts: usize,
    /// Fraction of all posts that are wasted.
    pub wasted_fraction: f64,
    /// Posts needed to bring every initially-under-tagged resource just past the
    /// under-tagged threshold (the paper's "1% of wasted posts" salvage claim).
    pub salvage_posts_needed: usize,
}

/// Parameters of the statistics computation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StatisticsParams {
    /// Stability parameters used to find stable points (the paper's strict
    /// dataset-preparation values by default).
    pub stability: StabilityParams,
    /// Post-count threshold at or below which a resource counts as under-tagged.
    pub under_tagged_threshold: usize,
}

impl Default for StatisticsParams {
    fn default() -> Self {
        Self {
            stability: StabilityParams::dataset_preparation(),
            under_tagged_threshold: 10,
        }
    }
}

impl CorpusStatistics {
    /// Computes the statistics of a synthetic corpus.
    pub fn compute(corpus: &SyntheticCorpus, params: &StatisticsParams) -> Self {
        let analyzer = StabilityAnalyzer::new(params.stability);
        let n = corpus.len();

        let mut stable_points = Vec::with_capacity(n);
        let mut wasted_posts = 0usize;
        let mut over_tagged_initial = 0usize;
        let mut under_tagged_initial = 0usize;
        let mut salvage_posts_needed = 0usize;

        for id in corpus.resource_ids() {
            let full = corpus.full_sequence(id);
            let initial = corpus.initial_posts[id.index()];
            let profile = analyzer.analyze(full);
            let stable_point = profile.stable_point;
            stable_points.push(stable_point);

            if let Some(sp) = stable_point {
                if full.len() > sp {
                    wasted_posts += full.len() - sp;
                }
                if initial >= sp {
                    over_tagged_initial += 1;
                }
            }
            if initial <= params.under_tagged_threshold {
                under_tagged_initial += 1;
                salvage_posts_needed += params.under_tagged_threshold + 1 - initial;
            }
        }

        let total_posts = corpus.total_posts();
        let total_initial_posts = corpus.total_initial_posts();
        let stabilised: Vec<usize> = stable_points.iter().flatten().copied().collect();
        let mean_stable_point = if stabilised.is_empty() {
            0.0
        } else {
            stabilised.iter().sum::<usize>() as f64 / stabilised.len() as f64
        };

        Self {
            num_resources: n,
            total_posts,
            total_initial_posts,
            mean_posts: total_posts as f64 / n.max(1) as f64,
            mean_initial_posts: total_initial_posts as f64 / n.max(1) as f64,
            stable_points,
            mean_stable_point,
            over_tagged_initial,
            under_tagged_initial,
            under_tagged_threshold: params.under_tagged_threshold,
            wasted_posts,
            wasted_fraction: if total_posts == 0 {
                0.0
            } else {
                wasted_posts as f64 / total_posts as f64
            },
            salvage_posts_needed,
        }
    }

    /// Fraction of resources that are over-tagged at the initial state.
    pub fn over_tagged_fraction(&self) -> f64 {
        self.over_tagged_initial as f64 / self.num_resources.max(1) as f64
    }

    /// Fraction of resources that are under-tagged at the initial state.
    pub fn under_tagged_fraction(&self) -> f64 {
        self.under_tagged_initial as f64 / self.num_resources.max(1) as f64
    }

    /// Fraction of resources that reach a stable point within their sequence.
    pub fn stabilised_fraction(&self) -> f64 {
        let stabilised = self.stable_points.iter().filter(|sp| sp.is_some()).count();
        stabilised as f64 / self.num_resources.max(1) as f64
    }

    /// The salvage ratio: posts needed to rescue all under-tagged resources,
    /// expressed as a fraction of the wasted posts (the paper reports ~1%).
    pub fn salvage_ratio(&self) -> f64 {
        if self.wasted_posts == 0 {
            0.0
        } else {
            self.salvage_posts_needed as f64 / self.wasted_posts as f64
        }
    }

    /// Per-resource stable point lookup.
    pub fn stable_point(&self, id: ResourceId) -> Option<usize> {
        self.stable_points.get(id.index()).copied().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    #[test]
    fn histogram_bins_cover_all_resources() {
        let corpus = generate(&GeneratorConfig::small(80, 2));
        let hist = PostCountHistogram::from_corpus(&corpus, 10);
        assert_eq!(hist.total(), 80);
        assert!(hist.bins.len() >= 2);
    }

    #[test]
    fn histogram_from_lengths_heavy_tail() {
        // 90 resources with 1 post, 10 with 100 posts.
        let lengths: Vec<usize> = std::iter::repeat_n(1, 90)
            .chain(std::iter::repeat_n(100, 10))
            .collect();
        let hist = PostCountHistogram::from_lengths(lengths, 10);
        assert!(hist.is_heavy_tailed());
        assert_eq!(hist.bins[0].2, 90);
        assert_eq!(hist.total(), 100);
    }

    #[test]
    #[should_panic(expected = "base must be at least 2")]
    fn histogram_rejects_base_one() {
        PostCountHistogram::from_lengths([1, 2, 3], 1);
    }

    #[test]
    fn histogram_empty_input() {
        let hist = PostCountHistogram::from_lengths(std::iter::empty(), 10);
        assert_eq!(hist.total(), 0);
        assert!(!hist.is_heavy_tailed());
    }

    #[test]
    fn statistics_basic_consistency() {
        let corpus = generate(&GeneratorConfig::small(100, 4));
        let params = StatisticsParams {
            stability: StabilityParams::new(10, 0.995),
            under_tagged_threshold: 10,
        };
        let stats = CorpusStatistics::compute(&corpus, &params);
        assert_eq!(stats.num_resources, 100);
        assert_eq!(stats.stable_points.len(), 100);
        assert_eq!(stats.total_posts, corpus.total_posts());
        assert!(stats.total_initial_posts < stats.total_posts);
        assert!(stats.mean_posts > 0.0);
        assert!(stats.wasted_fraction >= 0.0 && stats.wasted_fraction <= 1.0);
        assert!(stats.over_tagged_fraction() <= 1.0);
        assert!(stats.under_tagged_fraction() <= 1.0);
        // Most synthetic resources stabilise under these relaxed parameters.
        assert!(stats.stabilised_fraction() > 0.7);
        // Wasted posts exist because popular resources overshoot their stable points.
        assert!(stats.wasted_posts > 0);
    }

    #[test]
    fn under_tagged_and_salvage_are_consistent() {
        let corpus = generate(&GeneratorConfig::small(150, 8));
        let stats = CorpusStatistics::compute(
            &corpus,
            &StatisticsParams {
                stability: StabilityParams::new(10, 0.995),
                under_tagged_threshold: 10,
            },
        );
        let recount = corpus.initial_posts.iter().filter(|&&c| c <= 10).count();
        assert_eq!(stats.under_tagged_initial, recount);
        // Salvage needs at most (threshold) posts per under-tagged resource.
        assert!(stats.salvage_posts_needed <= stats.under_tagged_initial * 11);
        if stats.under_tagged_initial > 0 {
            assert!(stats.salvage_posts_needed >= stats.under_tagged_initial);
        }
    }

    #[test]
    fn salvage_ratio_is_small_relative_to_wasted_posts() {
        // The paper's headline claim: redirecting a small fraction of the wasted
        // posts rescues every under-tagged resource. With a skewed synthetic
        // corpus the ratio should be well below 1.
        let corpus = generate(&GeneratorConfig::small(300, 12));
        let stats = CorpusStatistics::compute(
            &corpus,
            &StatisticsParams {
                stability: StabilityParams::new(10, 0.995),
                under_tagged_threshold: 10,
            },
        );
        assert!(stats.wasted_posts > 0);
        assert!(
            stats.salvage_ratio() < 1.0,
            "salvage ratio {} should be < 1",
            stats.salvage_ratio()
        );
    }
}
