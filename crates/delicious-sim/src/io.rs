//! JSON import/export of synthetic corpora.
//!
//! The paper's experiments reuse one fixed 5,000-URL sample across every figure.
//! To make the reproduction equally consistent (and to avoid regenerating a
//! large corpus for every benchmark invocation), a [`SyntheticCorpus`] can be
//! written to and read back from a JSON file.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use crate::generator::SyntheticCorpus;

/// Errors that can occur while saving or loading a corpus.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// JSON (de)serialization error.
    Json(serde_json::Error),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Json(e) => write!(f, "JSON error: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Json(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

/// Writes a corpus to a JSON file (overwriting any existing file).
pub fn save_corpus(corpus: &SyntheticCorpus, path: &Path) -> Result<(), IoError> {
    let file = File::create(path)?;
    let writer = BufWriter::new(file);
    serde_json::to_writer(writer, corpus)?;
    Ok(())
}

/// Reads a corpus back from a JSON file and restores its internal indexes.
pub fn load_corpus(path: &Path) -> Result<SyntheticCorpus, IoError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut corpus: SyntheticCorpus = serde_json::from_reader(reader)?;
    corpus.rebuild_indexes();
    Ok(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    #[test]
    fn corpus_roundtrips_through_json() {
        let corpus = generate(&GeneratorConfig::small(25, 42));
        let dir = std::env::temp_dir().join("delicious-sim-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.json");

        save_corpus(&corpus, &path).expect("save");
        let loaded = load_corpus(&path).expect("load");

        assert_eq!(loaded.len(), corpus.len());
        assert_eq!(loaded.initial_posts, corpus.initial_posts);
        assert_eq!(loaded.total_posts(), corpus.total_posts());
        for id in corpus.resource_ids() {
            assert_eq!(loaded.full_sequence(id), corpus.full_sequence(id));
            assert_eq!(
                loaded.taxonomy.assignment(id),
                corpus.taxonomy.assignment(id)
            );
        }
        // The rebuilt tag index resolves names again.
        let some_tag = corpus.corpus.tags.iter().next().unwrap();
        assert_eq!(loaded.corpus.tags.get(some_tag.1), Some(some_tag.0));

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_reports_io_error() {
        let err = load_corpus(Path::new("/nonexistent/definitely/missing.json")).unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
        assert!(err.to_string().contains("I/O error"));
    }

    #[test]
    fn load_malformed_json_reports_json_error() {
        let dir = std::env::temp_dir().join("delicious-sim-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.json");
        std::fs::write(&path, "{ not json").unwrap();
        let err = load_corpus(&path).unwrap_err();
        assert!(matches!(err, IoError::Json(_)));
        std::fs::remove_file(&path).ok();
    }
}
