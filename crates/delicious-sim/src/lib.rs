//! # delicious-sim
//!
//! Synthetic del.icio.us-style corpus generator — the data substrate of the
//! reproduction of *"On Incentive-based Tagging"* (ICDE 2013).
//!
//! The paper's experiments run on a 5,000-URL sample of the 2007 del.icio.us
//! crawl. That dataset is not available, so this crate builds a statistically
//! equivalent synthetic corpus:
//!
//! * every resource has a latent **true tag distribution** drawn from a topic
//!   model ([`topics`]), so its rfd converges exactly as the paper's
//!   Figure 1(a) shows;
//! * resource popularity follows a **Zipf law** ([`zipf`]), reproducing the
//!   skewed posts-per-resource distribution of Figure 1(b) and the paper's
//!   wasted-post / under-tagging statistics ([`stats`]);
//! * a synthetic **category taxonomy** ([`taxonomy`]) stands in for the Open
//!   Directory Project ground truth of the §V-C accuracy case study;
//! * generation is fully **deterministic** given a seed ([`generator`]), and
//!   corpora can be persisted as JSON ([`io`]).
//!
//! ## Quick example
//!
//! ```
//! use delicious_sim::generator::{generate, GeneratorConfig};
//!
//! let corpus = generate(&GeneratorConfig::small(50, 42));
//! assert_eq!(corpus.len(), 50);
//! // Every resource starts with a non-empty "January" prefix of its sequence.
//! for id in corpus.resource_ids() {
//!     assert!(!corpus.initial_sequence(id).is_empty());
//! }
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod generator;
pub mod io;
pub mod stats;
pub mod taxonomy;
pub mod topics;
pub mod zipf;

pub use generator::{generate, GeneratorConfig, SyntheticCorpus};
pub use stats::{CorpusStatistics, PostCountHistogram, StatisticsParams};
pub use taxonomy::{Category, CategoryId, Taxonomy};
pub use topics::{ProfileParams, ResourceProfile, Topic, TopicId, TopicModel};
pub use zipf::{WeightedIndex, Zipf};
