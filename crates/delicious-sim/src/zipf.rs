//! Zipf / power-law sampling utilities.
//!
//! The paper's Figure 1(b) shows that the number of posts per del.icio.us URL is
//! extremely skewed: over ten million URLs were tagged exactly once while a
//! handful were tagged more than 10,000 times. A Zipf (discrete power-law)
//! distribution over resource ranks reproduces that shape, and the same
//! distribution drives the Free-Choice tagger model (taggers overwhelmingly pick
//! popular resources).
//!
//! We implement Zipf sampling ourselves (inverse-CDF over precomputed cumulative
//! weights with binary search) rather than pulling in an extra statistics crate.

use rand::Rng;

/// A Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(rank = k) ∝ 1 / k^s`.
///
/// Sampling is `O(log n)` via binary search over the cumulative weights; the
/// weights themselves are computed once at construction (`O(n)`).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n ≥ 1` ranks with exponent `s > 0`.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n >= 1, "a Zipf distribution needs at least one rank");
        assert!(
            exponent > 0.0 && exponent.is_finite(),
            "the Zipf exponent must be positive and finite (got {exponent})"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(exponent);
            cumulative.push(acc);
        }
        Self {
            cumulative,
            exponent,
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when the distribution has zero ranks (never constructible; provided
    /// for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability mass of rank `k` (1-based). Returns 0 outside `1..=n`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 || rank > self.cumulative.len() {
            return 0.0;
        }
        let total = *self.cumulative.last().expect("non-empty");
        let upper = self.cumulative[rank - 1];
        let lower = if rank >= 2 {
            self.cumulative[rank - 2]
        } else {
            0.0
        };
        (upper - lower) / total
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u: f64 = rng.gen_range(0.0..total);
        // partition_point returns the first index whose cumulative weight exceeds u.
        let idx = self.cumulative.partition_point(|&c| c <= u);
        idx.min(self.cumulative.len() - 1) + 1
    }

    /// Draws a 0-based index in `0..n` (convenience wrapper around [`Zipf::sample`]).
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sample(rng) - 1
    }

    /// The normalised weight vector `w_k ∝ 1/k^s`, useful for deterministic
    /// expected-count computations (e.g. splitting an initial post budget).
    pub fn weights(&self) -> Vec<f64> {
        let total = *self.cumulative.last().expect("non-empty");
        let mut prev = 0.0;
        self.cumulative
            .iter()
            .map(|&c| {
                let w = (c - prev) / total;
                prev = c;
                w
            })
            .collect()
    }
}

/// A discrete distribution over arbitrary non-negative weights, sampled by
/// inverse CDF. Used for per-resource tag distributions.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
}

impl WeightedIndex {
    /// Builds the sampler from raw weights. Negative, NaN or infinite weights are
    /// treated as 0. Returns `None` when every weight is 0.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            let w = if w.is_finite() && w > 0.0 { w } else { 0.0 };
            acc += w;
            cumulative.push(acc);
        }
        if acc <= 0.0 {
            None
        } else {
            Some(Self { cumulative })
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when there are no categories.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws a 0-based category index proportionally to its weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u: f64 = rng.gen_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c <= u);
        idx.min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_zero_ranks() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent must be positive")]
    fn zipf_rejects_bad_exponent() {
        Zipf::new(10, 0.0);
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_decreases() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..100 {
            assert!(z.pmf(k) >= z.pmf(k + 1));
        }
        assert_eq!(z.pmf(0), 0.0);
        assert_eq!(z.pmf(101), 0.0);
    }

    #[test]
    fn zipf_weights_match_pmf() {
        let z = Zipf::new(20, 0.8);
        let w = z.weights();
        assert_eq!(w.len(), 20);
        for (i, &wi) in w.iter().enumerate() {
            assert!((wi - z.pmf(i + 1)).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_samples_stay_in_range_and_favour_low_ranks() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            let r = z.sample(&mut rng);
            assert!((1..=50).contains(&r));
            counts[r - 1] += 1;
        }
        // Rank 1 should be sampled far more often than rank 50.
        assert!(
            counts[0] > counts[49] * 5,
            "counts: {} vs {}",
            counts[0],
            counts[49]
        );
        // Empirical frequency of rank 1 should be near its pmf.
        let freq = counts[0] as f64 / 20_000.0;
        assert!(
            (freq - z.pmf(1)).abs() < 0.02,
            "freq {freq} pmf {}",
            z.pmf(1)
        );
    }

    #[test]
    fn zipf_sample_index_is_zero_based() {
        let z = Zipf::new(3, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let i = z.sample_index(&mut rng);
            assert!(i < 3);
        }
    }

    #[test]
    fn zipf_determinism_with_same_seed() {
        let z = Zipf::new(1000, 1.0);
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn weighted_index_none_when_all_zero() {
        assert!(WeightedIndex::new(&[0.0, 0.0]).is_none());
        assert!(WeightedIndex::new(&[]).is_none());
        assert!(WeightedIndex::new(&[f64::NAN, -1.0]).is_none());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let w = WeightedIndex::new(&[0.0, 3.0, 1.0]).unwrap();
        assert_eq!(w.len(), 3);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio {ratio}");
    }
}
