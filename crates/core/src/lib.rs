//! # tagging-core
//!
//! Core data model and metrics from *"On Incentive-based Tagging"*
//! (Yang, Cheng, Mo, Kao, Cheung — ICDE 2013).
//!
//! A social tagging system lets users annotate *resources* (URLs, photos, …)
//! with *posts*: small sets of free-form *tags*. The paper observes that the
//! relative tag frequency distribution (rfd) of a resource converges as the
//! resource accumulates posts, formalises that observation into a **tagging
//! stability** score (a moving average of adjacent rfd similarities) and a
//! **tagging quality** metric (similarity of the current rfd to the stable rfd),
//! and then asks how a fixed incentive budget should be allocated across
//! resources to maximise aggregate quality.
//!
//! This crate contains the foundation every other crate in the workspace builds
//! on:
//!
//! * [`model`] — tags, posts, post sequences, resources and corpora (§III-A);
//! * [`rfd`] — sparse relative tag frequency distributions and incremental
//!   frequency tracking (Definitions 3–5);
//! * [`similarity`] — cosine similarity (Appendix A) plus alternative metrics
//!   behind the [`similarity::SimilarityMetric`] trait;
//! * [`stability`] — adjacent similarity, MA scores, practically-stable rfds and
//!   stable/unstable points (Definitions 6–8);
//! * [`quality`] — per-resource and set-level tagging quality (Definitions 9–10).
//!
//! ## Quick example
//!
//! ```
//! use tagging_core::model::{Post, TagDictionary};
//! use tagging_core::stability::{StabilityAnalyzer, StabilityParams};
//!
//! let mut dict = TagDictionary::new();
//! let steady = Post::from_names(&mut dict, ["maps", "google"]).unwrap();
//! let posts: Vec<Post> = vec![steady; 30];
//!
//! let analyzer = StabilityAnalyzer::new(StabilityParams::new(5, 0.99));
//! let profile = analyzer.analyze(&posts);
//! assert_eq!(profile.stable_point, Some(5));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod model;
pub mod quality;
pub mod rfd;
pub mod similarity;
pub mod stability;

pub use model::{Corpus, Post, PostSequence, Resource, ResourceId, TagDictionary, TagId};
pub use quality::{quality_curve, QualityEvaluator};
pub use rfd::{rfd_of_prefix, FrequencyTracker, Rfd};
pub use similarity::{cosine, CosineSimilarity, MetricKind, SimilarityMetric};
pub use stability::{MaTracker, StabilityAnalyzer, StabilityParams, StabilityProfile};
