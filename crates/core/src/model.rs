//! Data model of a social tagging system (paper §III-A).
//!
//! The paper models a tagging system as a set of *resources* `R = {r_1..r_n}`
//! (e.g. URLs), a universe of *tags* `T = {t_1..t_m}`, and for each resource a
//! *post sequence*: the chronologically ordered list of posts it has received,
//! where a post (Definition 1) is a non-empty set of tags assigned by one tagger
//! in a single tagging operation.
//!
//! This module provides:
//!
//! * [`TagId`] / [`ResourceId`] — cheap copyable newtype identifiers;
//! * [`TagDictionary`] — an interner mapping tag strings to dense [`TagId`]s;
//! * [`Post`] — a deduplicated, sorted, non-empty set of tags;
//! * [`PostSequence`] — the ordered posts of one resource (Definition 2);
//! * [`Resource`] — a resource together with its post sequence and metadata;
//! * [`Corpus`] — a collection of resources sharing one tag dictionary.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a tag inside a [`TagDictionary`].
///
/// Tag ids are dense (`0..dictionary.len()`), which lets relative tag frequency
/// distributions be stored as sparse vectors indexed by `TagId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TagId(pub u32);

impl TagId {
    /// Returns the id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a resource inside a [`Corpus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResourceId(pub u32);

impl ResourceId {
    /// Returns the id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Interner for tag strings.
///
/// Every distinct tag string is assigned a dense [`TagId`]. The dictionary is the
/// concrete realisation of the paper's tag universe `T`; `|T|` is
/// [`TagDictionary::len`].
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct TagDictionary {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, TagId>,
}

impl TagDictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dictionary pre-populated with the given tag names.
    ///
    /// Duplicate names are interned once.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut dict = Self::new();
        for name in names {
            dict.intern(name.as_ref());
        }
        dict
    }

    /// Interns `name`, returning its [`TagId`]. Idempotent.
    pub fn intern(&mut self, name: &str) -> TagId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = TagId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned tag by name.
    pub fn get(&self, name: &str) -> Option<TagId> {
        self.index.get(name).copied()
    }

    /// Returns the tag name for `id`, or `None` if the id is out of range.
    pub fn name(&self, id: TagId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of distinct tags interned so far (the paper's `|T|`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns true when no tag has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(TagId, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (TagId(i as u32), n.as_str()))
    }

    /// Rebuilds the name → id index. Needed after deserialization because the
    /// reverse index is not serialized.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), TagId(i as u32)))
            .collect();
    }
}

/// A post: the non-empty set of tags a tagger assigns to a resource in one
/// tagging operation (paper Definition 1).
///
/// Tags are stored sorted and deduplicated so that set semantics hold and
/// iteration order is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Post {
    tags: Vec<TagId>,
}

/// Error returned when attempting to construct an empty [`Post`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyPostError;

impl fmt::Display for EmptyPostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "a post must contain at least one tag (paper Definition 1)"
        )
    }
}

impl std::error::Error for EmptyPostError {}

impl Post {
    /// Builds a post from an iterator of tag ids.
    ///
    /// Duplicates are removed; returns [`EmptyPostError`] if the result would be
    /// empty, because the paper defines a post as a *non-empty* set of tags.
    pub fn new<I: IntoIterator<Item = TagId>>(tags: I) -> Result<Self, EmptyPostError> {
        let mut tags: Vec<TagId> = tags.into_iter().collect();
        tags.sort_unstable();
        tags.dedup();
        if tags.is_empty() {
            Err(EmptyPostError)
        } else {
            Ok(Self { tags })
        }
    }

    /// Builds a post from tag names, interning them into `dict`.
    pub fn from_names<I, S>(dict: &mut TagDictionary, names: I) -> Result<Self, EmptyPostError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Self::new(names.into_iter().map(|n| dict.intern(n.as_ref())))
    }

    /// Number of distinct tags in the post.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// A post is never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Returns true when `tag` appears in the post.
    pub fn contains(&self, tag: TagId) -> bool {
        self.tags.binary_search(&tag).is_ok()
    }

    /// The tags of the post in ascending id order.
    pub fn tags(&self) -> &[TagId] {
        &self.tags
    }

    /// Iterates over the tags of the post.
    pub fn iter(&self) -> impl Iterator<Item = TagId> + '_ {
        self.tags.iter().copied()
    }
}

/// The chronologically ordered posts received by one resource
/// (paper Definition 2: `(p_i(1), p_i(2), ...)`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PostSequence {
    posts: Vec<Post>,
}

impl PostSequence {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a sequence from posts already in chronological order.
    pub fn from_posts(posts: Vec<Post>) -> Self {
        Self { posts }
    }

    /// Appends a post as the newest element of the sequence.
    pub fn push(&mut self, post: Post) {
        self.posts.push(post);
    }

    /// Number of posts in the sequence (the paper's `k` upper bound).
    pub fn len(&self) -> usize {
        self.posts.len()
    }

    /// Returns true when the resource has never been tagged.
    pub fn is_empty(&self) -> bool {
        self.posts.is_empty()
    }

    /// The `k`-th post `p_i(k)`, 1-based as in the paper.
    ///
    /// Returns `None` when `k == 0` or `k > len()`.
    pub fn post(&self, k: usize) -> Option<&Post> {
        if k == 0 {
            None
        } else {
            self.posts.get(k - 1)
        }
    }

    /// All posts in chronological order (0-based slice).
    pub fn posts(&self) -> &[Post] {
        &self.posts
    }

    /// Iterates over the posts in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = &Post> {
        self.posts.iter()
    }

    /// Returns the prefix of the first `k` posts.
    pub fn prefix(&self, k: usize) -> &[Post] {
        &self.posts[..k.min(self.posts.len())]
    }
}

impl FromIterator<Post> for PostSequence {
    fn from_iter<I: IntoIterator<Item = Post>>(iter: I) -> Self {
        Self {
            posts: iter.into_iter().collect(),
        }
    }
}

/// A resource (e.g. a URL) together with its full post sequence and optional
/// human-readable metadata used by the case studies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Resource {
    /// Identifier of the resource within its [`Corpus`].
    pub id: ResourceId,
    /// Human readable name (the URL in the paper's dataset).
    pub name: String,
    /// Optional description, used by the Table VII style case studies.
    pub description: String,
    /// The full post sequence of the resource.
    pub posts: PostSequence,
}

impl Resource {
    /// Creates a resource with an empty post sequence.
    pub fn new(id: ResourceId, name: impl Into<String>) -> Self {
        Self {
            id,
            name: name.into(),
            description: String::new(),
            posts: PostSequence::new(),
        }
    }

    /// Sets the description, builder-style.
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Sets the post sequence, builder-style.
    pub fn with_posts(mut self, posts: PostSequence) -> Self {
        self.posts = posts;
        self
    }

    /// Number of posts the resource has received in total.
    pub fn post_count(&self) -> usize {
        self.posts.len()
    }
}

/// A collection of resources sharing one tag dictionary — the concrete `R` and
/// `T` of the paper.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Corpus {
    /// The shared tag universe `T`.
    pub tags: TagDictionary,
    /// The resources `R`, indexed by `ResourceId::index()`.
    pub resources: Vec<Resource>,
}

impl Corpus {
    /// Creates an empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a resource with the given name and returns its id.
    pub fn add_resource(&mut self, name: impl Into<String>) -> ResourceId {
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(Resource::new(id, name));
        id
    }

    /// Number of resources (the paper's `n`).
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Returns true when the corpus holds no resources.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Immutable access to a resource by id.
    pub fn resource(&self, id: ResourceId) -> Option<&Resource> {
        self.resources.get(id.index())
    }

    /// Mutable access to a resource by id.
    pub fn resource_mut(&mut self, id: ResourceId) -> Option<&mut Resource> {
        self.resources.get_mut(id.index())
    }

    /// Iterates over all resources in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Resource> {
        self.resources.iter()
    }

    /// Total number of posts across all resources.
    pub fn total_posts(&self) -> usize {
        self.resources.iter().map(Resource::post_count).sum()
    }

    /// Appends a post to the given resource's sequence.
    ///
    /// Returns `false` when the resource id is unknown.
    pub fn append_post(&mut self, id: ResourceId, post: Post) -> bool {
        match self.resources.get_mut(id.index()) {
            Some(r) => {
                r.posts.push(post);
                true
            }
            None => false,
        }
    }

    /// Restores internal lookup structures after deserialization.
    pub fn rebuild_indexes(&mut self) {
        self.tags.rebuild_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_dictionary_interns_once() {
        let mut dict = TagDictionary::new();
        let a = dict.intern("google");
        let b = dict.intern("earth");
        let a2 = dict.intern("google");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(dict.len(), 2);
        assert_eq!(dict.name(a), Some("google"));
        assert_eq!(dict.name(b), Some("earth"));
        assert_eq!(dict.get("google"), Some(a));
        assert_eq!(dict.get("missing"), None);
    }

    #[test]
    fn tag_dictionary_from_names_dedups() {
        let dict = TagDictionary::from_names(["a", "b", "a", "c", "b"]);
        assert_eq!(dict.len(), 3);
    }

    #[test]
    fn tag_dictionary_iter_in_id_order() {
        let dict = TagDictionary::from_names(["x", "y", "z"]);
        let collected: Vec<_> = dict.iter().map(|(id, n)| (id.0, n.to_string())).collect();
        assert_eq!(
            collected,
            vec![
                (0, "x".to_string()),
                (1, "y".to_string()),
                (2, "z".to_string())
            ]
        );
    }

    #[test]
    fn rebuild_index_restores_lookups() {
        let mut dict = TagDictionary::from_names(["a", "b"]);
        dict.index.clear();
        assert_eq!(dict.get("a"), None);
        dict.rebuild_index();
        assert_eq!(dict.get("a"), Some(TagId(0)));
        assert_eq!(dict.get("b"), Some(TagId(1)));
    }

    #[test]
    fn post_requires_at_least_one_tag() {
        assert_eq!(Post::new(std::iter::empty()), Err(EmptyPostError));
        let p = Post::new([TagId(3)]).unwrap();
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn post_deduplicates_and_sorts() {
        let p = Post::new([TagId(5), TagId(1), TagId(5), TagId(3)]).unwrap();
        assert_eq!(p.tags(), &[TagId(1), TagId(3), TagId(5)]);
        assert!(p.contains(TagId(3)));
        assert!(!p.contains(TagId(2)));
    }

    #[test]
    fn post_from_names_interns() {
        let mut dict = TagDictionary::new();
        let p = Post::from_names(&mut dict, ["google", "earth", "google"]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(dict.len(), 2);
    }

    #[test]
    fn post_sequence_is_one_based_like_the_paper() {
        let mut seq = PostSequence::new();
        assert!(seq.is_empty());
        let p1 = Post::new([TagId(0)]).unwrap();
        let p2 = Post::new([TagId(1)]).unwrap();
        seq.push(p1.clone());
        seq.push(p2.clone());
        assert_eq!(seq.len(), 2);
        assert_eq!(seq.post(0), None);
        assert_eq!(seq.post(1), Some(&p1));
        assert_eq!(seq.post(2), Some(&p2));
        assert_eq!(seq.post(3), None);
    }

    #[test]
    fn post_sequence_prefix_clamps() {
        let seq: PostSequence = (0..5).map(|i| Post::new([TagId(i)]).unwrap()).collect();
        assert_eq!(seq.prefix(3).len(), 3);
        assert_eq!(seq.prefix(99).len(), 5);
        assert_eq!(seq.prefix(0).len(), 0);
    }

    #[test]
    fn corpus_add_and_lookup() {
        let mut corpus = Corpus::new();
        let r1 = corpus.add_resource("earth.google.com");
        let r2 = corpus.add_resource("picasa.google.com");
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.resource(r1).unwrap().name, "earth.google.com");
        assert_eq!(corpus.resource(r2).unwrap().id, r2);
        assert!(corpus.resource(ResourceId(42)).is_none());
    }

    #[test]
    fn corpus_append_post_counts() {
        let mut corpus = Corpus::new();
        let r = corpus.add_resource("r");
        let tag = corpus.tags.intern("maps");
        assert!(corpus.append_post(r, Post::new([tag]).unwrap()));
        assert!(corpus.append_post(r, Post::new([tag]).unwrap()));
        assert!(!corpus.append_post(ResourceId(9), Post::new([tag]).unwrap()));
        assert_eq!(corpus.resource(r).unwrap().post_count(), 2);
        assert_eq!(corpus.total_posts(), 2);
    }

    #[test]
    fn resource_builder_style() {
        let seq: PostSequence = vec![Post::new([TagId(0)]).unwrap()].into_iter().collect();
        let r = Resource::new(ResourceId(0), "espn.go.com")
            .with_description("sports")
            .with_posts(seq);
        assert_eq!(r.description, "sports");
        assert_eq!(r.post_count(), 1);
    }
}
