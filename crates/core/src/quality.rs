//! Tagging quality (paper Definitions 9–10) and quality curves.
//!
//! The tagging quality of a resource that has received `k` posts is the
//! similarity between its current rfd and its (practically-)stable rfd:
//! `q_i(k) = s(F_i(k), φ̂_i)`. The quality of a resource set is the mean of the
//! per-resource qualities.
//!
//! [`QualityEvaluator`] bundles a reference (stable) rfd per resource so that
//! strategies and the simulation engine can evaluate `q_i(c_i + x_i)` cheaply.
//! [`quality_curve`] computes `q_i(k)` for every prefix length `k` of a post
//! sequence — this is exactly the curve shown in the paper's Figure 5 and is the
//! quantity the DP optimal algorithm tabulates.

use std::collections::HashMap;

use crate::model::{Post, ResourceId};
use crate::rfd::{FrequencyTracker, Rfd};
use crate::similarity::{CosineSimilarity, SimilarityMetric};
use crate::stability::{StabilityAnalyzer, StabilityParams};

/// Evaluates per-resource and set-level tagging quality against fixed reference
/// (stable) rfds.
pub struct QualityEvaluator<M = CosineSimilarity> {
    reference: HashMap<ResourceId, Rfd>,
    metric: M,
}

impl QualityEvaluator<CosineSimilarity> {
    /// Creates an evaluator using the paper's cosine similarity.
    pub fn new() -> Self {
        Self {
            reference: HashMap::new(),
            metric: CosineSimilarity,
        }
    }

    /// Builds an evaluator whose reference rfds are the practically-stable rfds
    /// of the given full post sequences (resources that never stabilise fall back
    /// to the rfd of their full sequence, which is the best available estimate).
    pub fn from_sequences<'a, I>(params: StabilityParams, sequences: I) -> Self
    where
        I: IntoIterator<Item = (ResourceId, &'a [Post])>,
    {
        let analyzer = StabilityAnalyzer::new(params);
        let mut evaluator = Self::new();
        for (id, posts) in sequences {
            let profile = analyzer.analyze(posts);
            let reference = profile
                .stable_rfd
                .unwrap_or_else(|| crate::rfd::rfd_of_prefix(posts, posts.len()));
            evaluator.set_reference(id, reference);
        }
        evaluator
    }
}

impl Default for QualityEvaluator<CosineSimilarity> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: SimilarityMetric> QualityEvaluator<M> {
    /// Creates an evaluator with a custom similarity metric.
    pub fn with_metric(metric: M) -> Self {
        Self {
            reference: HashMap::new(),
            metric,
        }
    }

    /// Registers (or replaces) the reference rfd `φ̂_i` of a resource.
    pub fn set_reference(&mut self, id: ResourceId, reference: Rfd) {
        self.reference.insert(id, reference);
    }

    /// The reference rfd of a resource, if registered.
    pub fn reference(&self, id: ResourceId) -> Option<&Rfd> {
        self.reference.get(&id)
    }

    /// Number of resources with a registered reference.
    pub fn len(&self) -> usize {
        self.reference.len()
    }

    /// True when no reference has been registered.
    pub fn is_empty(&self) -> bool {
        self.reference.is_empty()
    }

    /// `q_i(k)` for an explicit current rfd. Returns 0 when the resource has no
    /// registered reference (an unknown resource has undefined quality; treating
    /// it as 0 keeps set-level averages conservative).
    pub fn quality_of_rfd(&self, id: ResourceId, current: &Rfd) -> f64 {
        match self.reference.get(&id) {
            Some(reference) => self.metric.similarity(current, reference),
            None => 0.0,
        }
    }

    /// `q_i(k)` computed from the first `k` posts of the resource's sequence.
    pub fn quality_at(&self, id: ResourceId, posts: &[Post], k: usize) -> f64 {
        let rfd = crate::rfd::rfd_of_prefix(posts, k);
        self.quality_of_rfd(id, &rfd)
    }

    /// Set-level quality `q(R, k) = (1/n) Σ_i q_i(k_i)` over explicit rfds.
    pub fn set_quality<'a, I>(&self, current: I) -> f64
    where
        I: IntoIterator<Item = (ResourceId, &'a Rfd)>,
    {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (id, rfd) in current {
            sum += self.quality_of_rfd(id, rfd);
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// The quality curve of one resource: `q_i(k)` for `k = 0..=posts.len()`,
/// evaluated against the supplied reference rfd.
///
/// Index `k` of the returned vector holds `q_i(k)`; index 0 is always the
/// quality of the empty rfd, which is 0 by the similarity convention.
pub fn quality_curve(posts: &[Post], reference: &Rfd) -> Vec<f64> {
    quality_curve_with_metric(posts, reference, &CosineSimilarity)
}

/// [`quality_curve`] with a custom similarity metric.
pub fn quality_curve_with_metric<M: SimilarityMetric>(
    posts: &[Post],
    reference: &Rfd,
    metric: &M,
) -> Vec<f64> {
    let mut curve = Vec::with_capacity(posts.len() + 1);
    let mut tracker = FrequencyTracker::new();
    curve.push(metric.similarity(&Rfd::empty(), reference));
    for post in posts {
        tracker.push(post);
        curve.push(metric.similarity(&tracker.rfd(), reference));
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Post, TagDictionary, TagId};
    use crate::similarity::cosine;

    fn post(dict: &mut TagDictionary, names: &[&str]) -> Post {
        Post::from_names(dict, names.iter().copied()).unwrap()
    }

    /// Reproduces the paper's running example (Examples 1–3, Tables I, II, IV).
    ///
    /// Resources: r1 = Google Earth with posts ({google, earth},
    /// {google, geographic}, {earth}); r2 = Picasa with posts ({pictures},
    /// {pictures}). Stable rfds are given by Table II. The paper reports
    /// q1(3) = 0.953 and q2(2) = 0.897 and set quality 0.925.
    fn paper_example() -> (TagDictionary, Vec<Post>, Vec<Post>, Rfd, Rfd) {
        let mut dict = TagDictionary::new();
        let r1_posts = vec![
            post(&mut dict, &["google", "earth"]),
            post(&mut dict, &["google", "geographic"]),
            post(&mut dict, &["earth"]),
        ];
        let r2_posts = vec![
            post(&mut dict, &["pictures"]),
            post(&mut dict, &["pictures"]),
        ];
        let google = dict.get("google").unwrap();
        let earth = dict.get("earth").unwrap();
        let geographic = dict.get("geographic").unwrap();
        let pictures = dict.get("pictures").unwrap();
        let phi1 = Rfd::from_weights([(google, 0.25), (geographic, 0.25), (earth, 0.5)]);
        let phi2 = Rfd::from_weights([(google, 0.33), (pictures, 0.67)]);
        (dict, r1_posts, r2_posts, phi1, phi2)
    }

    #[test]
    fn paper_example_2_per_resource_quality() {
        let (_dict, r1_posts, r2_posts, phi1, phi2) = paper_example();
        let mut eval = QualityEvaluator::new();
        eval.set_reference(ResourceId(0), phi1);
        eval.set_reference(ResourceId(1), phi2);

        let q1 = eval.quality_at(ResourceId(0), &r1_posts, 3);
        let q2 = eval.quality_at(ResourceId(1), &r2_posts, 2);
        assert!((q1 - 0.953).abs() < 5e-3, "q1(3) = {q1}");
        assert!((q2 - 0.897).abs() < 5e-3, "q2(2) = {q2}");
    }

    #[test]
    fn paper_example_2_set_quality() {
        let (_dict, r1_posts, r2_posts, phi1, phi2) = paper_example();
        let mut eval = QualityEvaluator::new();
        eval.set_reference(ResourceId(0), phi1);
        eval.set_reference(ResourceId(1), phi2);
        let rfd1 = crate::rfd::rfd_of_prefix(&r1_posts, 3);
        let rfd2 = crate::rfd::rfd_of_prefix(&r2_posts, 2);
        let q = eval.set_quality([(ResourceId(0), &rfd1), (ResourceId(1), &rfd2)]);
        assert!((q - 0.925).abs() < 5e-3, "q(R) = {q}");
    }

    #[test]
    fn quality_of_unknown_resource_is_zero() {
        let eval = QualityEvaluator::new();
        let rfd = Rfd::from_counts([(TagId(0), 1)]);
        assert_eq!(eval.quality_of_rfd(ResourceId(7), &rfd), 0.0);
        assert!(eval.is_empty());
    }

    #[test]
    fn set_quality_of_empty_set_is_zero() {
        let eval = QualityEvaluator::new();
        assert_eq!(
            eval.set_quality(std::iter::empty::<(ResourceId, &Rfd)>()),
            0.0
        );
    }

    #[test]
    fn quality_curve_is_zero_at_k0_and_matches_direct_evaluation() {
        let (_dict, r1_posts, _r2, phi1, _phi2) = paper_example();
        let curve = quality_curve(&r1_posts, &phi1);
        assert_eq!(curve.len(), r1_posts.len() + 1);
        assert_eq!(curve[0], 0.0);
        for (k, &q) in curve.iter().enumerate().skip(1) {
            let direct = cosine(&crate::rfd::rfd_of_prefix(&r1_posts, k), &phi1);
            assert!((q - direct).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn quality_reaches_one_when_rfd_equals_reference() {
        let mut dict = TagDictionary::new();
        let steady = post(&mut dict, &["a", "b"]);
        let posts = vec![steady.clone(); 10];
        let reference = crate::rfd::rfd_of_prefix(&posts, 10);
        let curve = quality_curve(&posts, &reference);
        assert!((curve[10] - 1.0).abs() < 1e-12);
        // and it is non-decreasing for this constant stream
        for k in 1..10 {
            assert!(curve[k + 1] >= curve[k] - 1e-12);
        }
    }

    #[test]
    fn from_sequences_uses_stable_rfd_when_available() {
        let mut dict = TagDictionary::new();
        let steady = post(&mut dict, &["a", "b"]);
        let stable_posts = vec![steady.clone(); 30];
        // A short, never-stable sequence falls back to the full-sequence rfd.
        let short_posts = vec![post(&mut dict, &["c"]), post(&mut dict, &["d"])];

        let params = StabilityParams::new(5, 0.99);
        let eval = QualityEvaluator::from_sequences(
            params,
            [
                (ResourceId(0), stable_posts.as_slice()),
                (ResourceId(1), short_posts.as_slice()),
            ],
        );
        assert_eq!(eval.len(), 2);
        // The stable resource's reference equals its converged rfd (a: .5, b: .5).
        let r0 = eval.reference(ResourceId(0)).unwrap();
        assert!((r0.get(dict.get("a").unwrap()) - 0.5).abs() < 1e-12);
        // The short resource's reference is the rfd of its 2 posts.
        let r1 = eval.reference(ResourceId(1)).unwrap();
        assert!((r1.get(dict.get("c").unwrap()) - 0.5).abs() < 1e-12);
        // Quality of the stable resource at full length is 1.
        let q = eval.quality_at(ResourceId(0), &stable_posts, 30);
        assert!((q - 1.0).abs() < 1e-9);
    }

    #[test]
    fn custom_metric_is_used() {
        use crate::similarity::JaccardSimilarity;
        let mut eval = QualityEvaluator::with_metric(JaccardSimilarity);
        let reference = Rfd::from_counts([(TagId(0), 10), (TagId(1), 1)]);
        eval.set_reference(ResourceId(0), reference);
        // Jaccard ignores weights: rfd over the same two tags has quality 1.
        let current = Rfd::from_counts([(TagId(0), 1), (TagId(1), 10)]);
        assert!((eval.quality_of_rfd(ResourceId(0), &current) - 1.0).abs() < 1e-12);
    }
}
