//! Similarity metrics between relative tag frequency distributions.
//!
//! The paper (Appendix A) fixes **cosine similarity** as the metric `s` used for
//! adjacent similarity, MA scores and tagging quality:
//!
//! ```text
//! s(F_i(k_i), F_j(k_j)) = Σ_l F_i[l]·F_j[l] / (‖F_i‖₂ · ‖F_j‖₂)
//! ```
//!
//! with `s = 0` when either distribution is the all-zero `F(0)`.
//!
//! We expose the metric as a trait ([`SimilarityMetric`]) so the ablation benches
//! can swap in alternatives (Jaccard over supports, Hellinger affinity, total
//! variation affinity) while the rest of the system — MA scores, quality,
//! strategies — is metric-agnostic.

use crate::rfd::Rfd;

/// A similarity metric over rfds, returning values in `[0, 1]` where `1` means
/// "identical" and `0` means "nothing in common" (or an undefined comparison
/// involving the empty distribution).
pub trait SimilarityMetric: Send + Sync {
    /// Computes the similarity of two rfds.
    fn similarity(&self, a: &Rfd, b: &Rfd) -> f64;

    /// Human-readable metric name, used in benchmark and experiment reports.
    fn name(&self) -> &'static str;
}

/// Cosine similarity — the paper's metric (Appendix A, Equation 16).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CosineSimilarity;

impl SimilarityMetric for CosineSimilarity {
    fn similarity(&self, a: &Rfd, b: &Rfd) -> f64 {
        cosine(a, b)
    }

    fn name(&self) -> &'static str {
        "cosine"
    }
}

/// Cosine similarity of two rfds, with the paper's convention that the
/// similarity is 0 when either argument is the empty distribution.
pub fn cosine(a: &Rfd, b: &Rfd) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let denom = a.l2_norm() * b.l2_norm();
    if denom == 0.0 {
        return 0.0;
    }
    // Clamp to [0, 1] to absorb floating-point error; rfds are non-negative so
    // the mathematical value already lies in this range.
    (a.dot(b) / denom).clamp(0.0, 1.0)
}

/// Jaccard similarity over the *supports* (sets of tags with non-zero relative
/// frequency). Ignores the frequency values themselves; useful as an ablation
/// that shows why a weighted metric is needed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JaccardSimilarity;

impl SimilarityMetric for JaccardSimilarity {
    fn similarity(&self, a: &Rfd, b: &Rfd) -> f64 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let tags_a: Vec<_> = a.iter().map(|(t, _)| t).collect();
        let tags_b: Vec<_> = b.iter().map(|(t, _)| t).collect();
        let mut intersection = 0usize;
        let (mut i, mut j) = (0, 0);
        while i < tags_a.len() && j < tags_b.len() {
            match tags_a[i].cmp(&tags_b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    intersection += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = tags_a.len() + tags_b.len() - intersection;
        if union == 0 {
            0.0
        } else {
            intersection as f64 / union as f64
        }
    }

    fn name(&self) -> &'static str {
        "jaccard"
    }
}

/// Hellinger affinity (Bhattacharyya coefficient): `Σ_t sqrt(a_t · b_t)`.
///
/// Like cosine it is 1 for identical distributions and 0 for disjoint supports,
/// but it weights rare tags relatively more heavily.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HellingerAffinity;

impl SimilarityMetric for HellingerAffinity {
    fn similarity(&self, a: &Rfd, b: &Rfd) -> f64 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0;
        let entries_a: Vec<_> = a.iter().collect();
        let entries_b: Vec<_> = b.iter().collect();
        let (mut i, mut j) = (0, 0);
        while i < entries_a.len() && j < entries_b.len() {
            let (ta, wa) = entries_a[i];
            let (tb, wb) = entries_b[j];
            match ta.cmp(&tb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += (wa * wb).sqrt();
                    i += 1;
                    j += 1;
                }
            }
        }
        acc.clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "hellinger"
    }
}

/// Total-variation affinity: `1 − ½‖a − b‖₁`. Equals 1 for identical
/// distributions and 0 for disjoint supports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TotalVariationAffinity;

impl SimilarityMetric for TotalVariationAffinity {
    fn similarity(&self, a: &Rfd, b: &Rfd) -> f64 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        (1.0 - 0.5 * a.l1_distance(b)).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "total-variation"
    }
}

/// Enumeration of the built-in metrics, convenient for configuration files and
/// command-line selection in the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// The paper's cosine similarity.
    Cosine,
    /// Support-set Jaccard similarity.
    Jaccard,
    /// Hellinger affinity (Bhattacharyya coefficient).
    Hellinger,
    /// Total-variation affinity.
    TotalVariation,
}

impl MetricKind {
    /// All built-in metric kinds.
    pub const ALL: [MetricKind; 4] = [
        MetricKind::Cosine,
        MetricKind::Jaccard,
        MetricKind::Hellinger,
        MetricKind::TotalVariation,
    ];

    /// Instantiates the metric behind this kind.
    pub fn build(self) -> Box<dyn SimilarityMetric> {
        match self {
            MetricKind::Cosine => Box::new(CosineSimilarity),
            MetricKind::Jaccard => Box::new(JaccardSimilarity),
            MetricKind::Hellinger => Box::new(HellingerAffinity),
            MetricKind::TotalVariation => Box::new(TotalVariationAffinity),
        }
    }

    /// Parses a metric name as used on benchmark command lines.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "cosine" => Some(MetricKind::Cosine),
            "jaccard" => Some(MetricKind::Jaccard),
            "hellinger" => Some(MetricKind::Hellinger),
            "tv" | "total-variation" | "total_variation" => Some(MetricKind::TotalVariation),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TagId;

    fn rfd(pairs: &[(u32, u64)]) -> Rfd {
        Rfd::from_counts(pairs.iter().map(|&(t, c)| (TagId(t), c)))
    }

    #[test]
    fn cosine_identical_is_one() {
        let a = rfd(&[(0, 2), (1, 1)]);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_disjoint_is_zero() {
        let a = rfd(&[(0, 1)]);
        let b = rfd(&[(1, 1)]);
        assert_eq!(cosine(&a, &b), 0.0);
    }

    #[test]
    fn cosine_empty_is_zero_by_convention() {
        let a = rfd(&[(0, 1)]);
        assert_eq!(cosine(&a, &Rfd::empty()), 0.0);
        assert_eq!(cosine(&Rfd::empty(), &a), 0.0);
        assert_eq!(cosine(&Rfd::empty(), &Rfd::empty()), 0.0);
    }

    #[test]
    fn cosine_is_scale_invariant_in_counts() {
        let a = rfd(&[(0, 1), (1, 3)]);
        let b = rfd(&[(0, 10), (1, 30)]);
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_matches_paper_example_2_r1() {
        // Paper Table II: F1(3) = (.4, .2, .4, 0), stable φ̂1 = (.25, .25, .5, 0)
        // over tags (google, geographic, earth, pictures); q1(3) = 0.953.
        let f = Rfd::from_weights([(TagId(0), 0.4), (TagId(1), 0.2), (TagId(2), 0.4)]);
        let phi = Rfd::from_weights([(TagId(0), 0.25), (TagId(1), 0.25), (TagId(2), 0.5)]);
        let s = cosine(&f, &phi);
        assert!((s - 0.953).abs() < 5e-3, "got {s}");
    }

    #[test]
    fn cosine_matches_paper_example_2_r2() {
        // Paper Table II: F2(2) = (0, 0, 0, 1), φ̂2 = (.33, 0, 0, .67); q2(2) = 0.897.
        let f = Rfd::from_weights([(TagId(3), 1.0)]);
        let phi = Rfd::from_weights([(TagId(0), 0.33), (TagId(3), 0.67)]);
        let s = cosine(&f, &phi);
        assert!((s - 0.897).abs() < 5e-3, "got {s}");
    }

    #[test]
    fn jaccard_counts_support_overlap_only() {
        let a = rfd(&[(0, 100), (1, 1)]);
        let b = rfd(&[(0, 1), (1, 100)]);
        let j = JaccardSimilarity.similarity(&a, &b);
        assert!((j - 1.0).abs() < 1e-12);
        let c = rfd(&[(2, 1)]);
        assert_eq!(JaccardSimilarity.similarity(&a, &c), 0.0);
        assert_eq!(JaccardSimilarity.similarity(&a, &Rfd::empty()), 0.0);
    }

    #[test]
    fn jaccard_partial_overlap() {
        let a = rfd(&[(0, 1), (1, 1)]);
        let b = rfd(&[(1, 1), (2, 1)]);
        let j = JaccardSimilarity.similarity(&a, &b);
        assert!((j - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hellinger_identical_is_one_disjoint_is_zero() {
        let a = rfd(&[(0, 1), (1, 3)]);
        assert!((HellingerAffinity.similarity(&a, &a) - 1.0).abs() < 1e-9);
        let b = rfd(&[(5, 1)]);
        assert_eq!(HellingerAffinity.similarity(&a, &b), 0.0);
        assert_eq!(HellingerAffinity.similarity(&Rfd::empty(), &a), 0.0);
    }

    #[test]
    fn total_variation_identical_is_one_disjoint_is_zero() {
        let a = rfd(&[(0, 1), (1, 1)]);
        assert!((TotalVariationAffinity.similarity(&a, &a) - 1.0).abs() < 1e-12);
        let b = rfd(&[(2, 1)]);
        assert!(TotalVariationAffinity.similarity(&a, &b).abs() < 1e-12);
        assert_eq!(TotalVariationAffinity.similarity(&a, &Rfd::empty()), 0.0);
    }

    #[test]
    fn all_metrics_bounded_and_symmetric() {
        let a = rfd(&[(0, 3), (1, 1), (4, 2)]);
        let b = rfd(&[(1, 2), (4, 5), (7, 1)]);
        for kind in MetricKind::ALL {
            let metric = kind.build();
            let s_ab = metric.similarity(&a, &b);
            let s_ba = metric.similarity(&b, &a);
            assert!(
                (0.0..=1.0).contains(&s_ab),
                "{} out of range",
                metric.name()
            );
            assert!(
                (s_ab - s_ba).abs() < 1e-12,
                "{} not symmetric",
                metric.name()
            );
        }
    }

    #[test]
    fn metric_kind_parse_roundtrip() {
        assert_eq!(MetricKind::parse("cosine"), Some(MetricKind::Cosine));
        assert_eq!(MetricKind::parse("JACCARD"), Some(MetricKind::Jaccard));
        assert_eq!(MetricKind::parse("hellinger"), Some(MetricKind::Hellinger));
        assert_eq!(MetricKind::parse("tv"), Some(MetricKind::TotalVariation));
        assert_eq!(MetricKind::parse("unknown"), None);
        for kind in MetricKind::ALL {
            let name = kind.build().name();
            // every built-in metric's reported name parses back to the same kind
            assert_eq!(MetricKind::parse(name), Some(kind));
        }
    }
}
