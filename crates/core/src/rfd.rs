//! Relative tag frequency distributions (paper §III-B, Definitions 3–5).
//!
//! For a resource `r_i` that has received `k` posts:
//!
//! * the *frequency* of tag `t`, `h_i(t, k)`, is the number of the first `k`
//!   posts that contain `t` (Definition 3);
//! * the *relative tag frequency* `f_i(t, k)` normalises `h_i(t, k)` by the sum
//!   of all tag frequencies, i.e. by the number of (tag, post) incidences among
//!   the first `k` posts (Definition 4);
//! * the *relative tag frequency distribution* (rfd) `F_i(k)` is the vector of
//!   relative frequencies over the whole tag universe (Definition 5).
//!
//! Because a resource typically uses only a tiny fraction of the global tag
//! universe `T`, rfds are stored as **sparse vectors** ([`Rfd`]), exactly the
//! optimisation the paper describes for the MU strategy ("the number of distinct
//! tags associated with a particular resource is usually very small compared
//! with |T|").
//!
//! [`FrequencyTracker`] maintains `h_i(·, k)` incrementally as posts arrive, so
//! computing `F_i(k)` after each new post costs time proportional to the number
//! of distinct tags seen, not to `|T|` or `k`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::model::{Post, TagId};

/// A sparse relative tag frequency distribution `F_i(k)`.
///
/// Entries are kept sorted by [`TagId`] and always sum to 1 (unless the
/// distribution is empty, which models the paper's `F_i(0) = 0` case).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Rfd {
    entries: Vec<(TagId, f64)>,
}

impl Rfd {
    /// The empty distribution `F_i(0)` (all components zero).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds an rfd from raw tag counts, normalising them so the components
    /// sum to 1. Zero or negative counts are dropped.
    ///
    /// Returns the empty rfd when every count is zero.
    pub fn from_counts<I: IntoIterator<Item = (TagId, u64)>>(counts: I) -> Self {
        let mut map: BTreeMap<TagId, u64> = BTreeMap::new();
        for (tag, c) in counts {
            if c > 0 {
                *map.entry(tag).or_insert(0) += c;
            }
        }
        let total: u64 = map.values().sum();
        if total == 0 {
            return Self::empty();
        }
        let entries = map
            .into_iter()
            .map(|(t, c)| (t, c as f64 / total as f64))
            .collect();
        Self { entries }
    }

    /// Builds an rfd directly from already-normalised `(tag, weight)` pairs.
    ///
    /// The weights are re-normalised defensively so the invariant "components
    /// sum to 1" always holds; non-positive weights are dropped.
    pub fn from_weights<I: IntoIterator<Item = (TagId, f64)>>(weights: I) -> Self {
        let mut map: BTreeMap<TagId, f64> = BTreeMap::new();
        for (tag, w) in weights {
            if w > 0.0 && w.is_finite() {
                *map.entry(tag).or_insert(0.0) += w;
            }
        }
        let total: f64 = map.values().sum();
        if total <= 0.0 {
            return Self::empty();
        }
        let entries = map.into_iter().map(|(t, w)| (t, w / total)).collect();
        Self { entries }
    }

    /// Returns `f_i(t, k)` — the relative frequency of `tag`, 0 when absent.
    pub fn get(&self, tag: TagId) -> f64 {
        match self.entries.binary_search_by_key(&tag, |(t, _)| *t) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Number of tags with non-zero relative frequency.
    pub fn support(&self) -> usize {
        self.entries.len()
    }

    /// Returns true for the all-zero distribution `F_i(0)`.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(tag, relative frequency)` pairs in ascending tag order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Sum of all components (1 for non-empty rfds, 0 for the empty rfd).
    pub fn total_mass(&self) -> f64 {
        self.entries.iter().map(|(_, w)| w).sum()
    }

    /// Euclidean (L2) norm of the sparse vector.
    pub fn l2_norm(&self) -> f64 {
        self.entries.iter().map(|(_, w)| w * w).sum::<f64>().sqrt()
    }

    /// Dot product with another rfd, exploiting sparsity (merge join).
    pub fn dot(&self, other: &Rfd) -> f64 {
        let mut acc = 0.0;
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (ta, wa) = self.entries[i];
            let (tb, wb) = other.entries[j];
            match ta.cmp(&tb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += wa * wb;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// L1 distance to another rfd (used by alternative similarity metrics).
    pub fn l1_distance(&self, other: &Rfd) -> f64 {
        let mut acc = 0.0;
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() || j < other.entries.len() {
            match (self.entries.get(i), other.entries.get(j)) {
                (Some(&(ta, wa)), Some(&(tb, wb))) => match ta.cmp(&tb) {
                    std::cmp::Ordering::Less => {
                        acc += wa;
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        acc += wb;
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        acc += (wa - wb).abs();
                        i += 1;
                        j += 1;
                    }
                },
                (Some(&(_, wa)), None) => {
                    acc += wa;
                    i += 1;
                }
                (None, Some(&(_, wb))) => {
                    acc += wb;
                    j += 1;
                }
                (None, None) => break,
            }
        }
        acc
    }

    /// The tags of the distribution ordered by descending relative frequency
    /// (ties broken by ascending tag id). Used by the case studies to show the
    /// "top tags" of a resource.
    pub fn top_tags(&self, k: usize) -> Vec<(TagId, f64)> {
        let mut sorted: Vec<(TagId, f64)> = self.entries.clone();
        sorted.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        sorted.truncate(k);
        sorted
    }

    /// Converts the sparse representation into a dense vector of length
    /// `universe_size`. Intended for tests and small examples only.
    pub fn to_dense(&self, universe_size: usize) -> Vec<f64> {
        let mut dense = vec![0.0; universe_size];
        for &(tag, w) in &self.entries {
            if tag.index() < universe_size {
                dense[tag.index()] = w;
            }
        }
        dense
    }
}

/// Incrementally maintains the tag frequencies `h_i(·, k)` of one resource as
/// posts arrive, and produces the rfd `F_i(k)` on demand.
///
/// The tracker is the workhorse behind both the MU strategy's incremental MA
/// score maintenance and the simulation engine: pushing a post costs
/// `O(|post| log d)` where `d` is the number of distinct tags seen so far.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FrequencyTracker {
    counts: BTreeMap<TagId, u64>,
    /// Total number of (tag, post) incidences, i.e. `Σ_t h_i(t, k)`.
    incidences: u64,
    /// Number of posts consumed so far (the paper's `k`).
    posts: u64,
}

impl FrequencyTracker {
    /// Creates a tracker that has seen no posts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tracker pre-loaded with an initial prefix of posts.
    pub fn from_posts<'a, I: IntoIterator<Item = &'a Post>>(posts: I) -> Self {
        let mut tracker = Self::new();
        for p in posts {
            tracker.push(p);
        }
        tracker
    }

    /// Consumes one more post, updating `h_i(·, k)` and `k`.
    pub fn push(&mut self, post: &Post) {
        for tag in post.iter() {
            *self.counts.entry(tag).or_insert(0) += 1;
            self.incidences += 1;
        }
        self.posts += 1;
    }

    /// Number of posts consumed (the paper's `k`).
    pub fn post_count(&self) -> u64 {
        self.posts
    }

    /// `h_i(t, k)`: the number of consumed posts containing `tag`.
    pub fn frequency(&self, tag: TagId) -> u64 {
        self.counts.get(&tag).copied().unwrap_or(0)
    }

    /// `f_i(t, k)`: the relative frequency of `tag` (0 when no post has been seen).
    pub fn relative_frequency(&self, tag: TagId) -> f64 {
        if self.incidences == 0 {
            0.0
        } else {
            self.frequency(tag) as f64 / self.incidences as f64
        }
    }

    /// Number of distinct tags seen so far.
    pub fn distinct_tags(&self) -> usize {
        self.counts.len()
    }

    /// Total (tag, post) incidences `Σ_t h_i(t, k)` — the rfd normaliser.
    pub fn total_incidences(&self) -> u64 {
        self.incidences
    }

    /// Produces the current rfd `F_i(k)`.
    pub fn rfd(&self) -> Rfd {
        Rfd::from_counts(self.counts.iter().map(|(&t, &c)| (t, c)))
    }

    /// Iterates over the raw `(tag, h_i(tag, k))` counts.
    pub fn counts(&self) -> impl Iterator<Item = (TagId, u64)> + '_ {
        self.counts.iter().map(|(&t, &c)| (t, c))
    }
}

/// Convenience function: compute `F_i(k)` directly from the first `k` posts of a
/// sequence, as done in the paper's definitions (non-incremental form).
pub fn rfd_of_prefix(posts: &[Post], k: usize) -> Rfd {
    let tracker = FrequencyTracker::from_posts(posts.iter().take(k));
    tracker.rfd()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TagDictionary;

    fn post(dict: &mut TagDictionary, names: &[&str]) -> Post {
        Post::from_names(dict, names.iter().copied()).unwrap()
    }

    #[test]
    fn empty_rfd_is_all_zero() {
        let rfd = Rfd::empty();
        assert!(rfd.is_empty());
        assert_eq!(rfd.get(TagId(0)), 0.0);
        assert_eq!(rfd.total_mass(), 0.0);
        assert_eq!(rfd.l2_norm(), 0.0);
    }

    #[test]
    fn from_counts_normalises() {
        let rfd = Rfd::from_counts([(TagId(0), 2), (TagId(1), 1), (TagId(2), 1)]);
        assert!((rfd.get(TagId(0)) - 0.5).abs() < 1e-12);
        assert!((rfd.get(TagId(1)) - 0.25).abs() < 1e-12);
        assert!((rfd.total_mass() - 1.0).abs() < 1e-12);
        assert_eq!(rfd.support(), 3);
    }

    #[test]
    fn from_counts_drops_zeros_and_merges_duplicates() {
        let rfd = Rfd::from_counts([(TagId(3), 0), (TagId(1), 2), (TagId(1), 2)]);
        assert_eq!(rfd.support(), 1);
        assert!((rfd.get(TagId(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_weights_renormalises_and_filters() {
        let rfd = Rfd::from_weights([
            (TagId(0), 0.2),
            (TagId(1), 0.2),
            (TagId(2), -1.0),
            (TagId(3), f64::NAN),
        ]);
        assert_eq!(rfd.support(), 2);
        assert!((rfd.get(TagId(0)) - 0.5).abs() < 1e-12);
        assert!((rfd.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_weights_all_invalid_gives_empty() {
        let rfd = Rfd::from_weights([(TagId(0), 0.0), (TagId(1), -3.0)]);
        assert!(rfd.is_empty());
    }

    #[test]
    fn dot_product_merge_join() {
        let a = Rfd::from_counts([(TagId(0), 1), (TagId(2), 1)]);
        let b = Rfd::from_counts([(TagId(2), 1), (TagId(3), 1)]);
        // a = {0: .5, 2: .5}, b = {2: .5, 3: .5}, dot = .25
        assert!((a.dot(&b) - 0.25).abs() < 1e-12);
        assert!((a.dot(&a) - 0.5).abs() < 1e-12);
        assert_eq!(a.dot(&Rfd::empty()), 0.0);
    }

    #[test]
    fn l1_distance_handles_disjoint_support() {
        let a = Rfd::from_counts([(TagId(0), 1)]);
        let b = Rfd::from_counts([(TagId(1), 1)]);
        assert!((a.l1_distance(&b) - 2.0).abs() < 1e-12);
        assert!((a.l1_distance(&a)).abs() < 1e-12);
    }

    #[test]
    fn top_tags_orders_by_weight_then_id() {
        let rfd = Rfd::from_counts([(TagId(5), 3), (TagId(1), 3), (TagId(2), 1)]);
        let top = rfd.top_tags(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, TagId(1));
        assert_eq!(top[1].0, TagId(5));
    }

    #[test]
    fn to_dense_roundtrip() {
        let rfd = Rfd::from_counts([(TagId(0), 1), (TagId(3), 3)]);
        let dense = rfd.to_dense(5);
        assert_eq!(dense.len(), 5);
        assert!((dense[0] - 0.25).abs() < 1e-12);
        assert!((dense[3] - 0.75).abs() < 1e-12);
        assert_eq!(dense[1], 0.0);
    }

    #[test]
    fn tracker_matches_paper_definition_3_and_4() {
        // Table I of the paper: r1 receives ({google, earth}, {google, geographic}, {earth}).
        let mut dict = TagDictionary::new();
        let p1 = post(&mut dict, &["google", "earth"]);
        let p2 = post(&mut dict, &["google", "geographic"]);
        let p3 = post(&mut dict, &["earth"]);
        let google = dict.get("google").unwrap();
        let earth = dict.get("earth").unwrap();
        let geographic = dict.get("geographic").unwrap();

        let mut tracker = FrequencyTracker::new();
        tracker.push(&p1);
        tracker.push(&p2);
        tracker.push(&p3);

        // h(google, 3) = 2, h(earth, 3) = 2, h(geographic, 3) = 1; total incidences = 5.
        assert_eq!(tracker.post_count(), 3);
        assert_eq!(tracker.frequency(google), 2);
        assert_eq!(tracker.frequency(earth), 2);
        assert_eq!(tracker.frequency(geographic), 1);
        assert_eq!(tracker.total_incidences(), 5);
        assert!((tracker.relative_frequency(google) - 0.4).abs() < 1e-12);
        assert!((tracker.relative_frequency(geographic) - 0.2).abs() < 1e-12);

        // Table II first row: F1(3) = (google .4, geographic .2, earth .4, pictures 0).
        let rfd = tracker.rfd();
        assert!((rfd.get(google) - 0.4).abs() < 1e-12);
        assert!((rfd.get(earth) - 0.4).abs() < 1e-12);
        assert!((rfd.get(geographic) - 0.2).abs() < 1e-12);
        assert_eq!(rfd.get(TagId(99)), 0.0);
    }

    #[test]
    fn tracker_zero_posts_gives_empty_rfd() {
        let tracker = FrequencyTracker::new();
        assert_eq!(tracker.post_count(), 0);
        assert_eq!(tracker.relative_frequency(TagId(0)), 0.0);
        assert!(tracker.rfd().is_empty());
    }

    #[test]
    fn rfd_of_prefix_matches_incremental() {
        let mut dict = TagDictionary::new();
        let posts = vec![
            post(&mut dict, &["a", "b"]),
            post(&mut dict, &["b", "c"]),
            post(&mut dict, &["a"]),
            post(&mut dict, &["d", "a", "c"]),
        ];
        for k in 0..=posts.len() {
            let direct = rfd_of_prefix(&posts, k);
            let tracker = FrequencyTracker::from_posts(posts.iter().take(k));
            assert_eq!(direct, tracker.rfd(), "prefix length {k}");
        }
    }

    #[test]
    fn tracker_distinct_tags() {
        let mut dict = TagDictionary::new();
        let mut tracker = FrequencyTracker::new();
        tracker.push(&post(&mut dict, &["a", "b"]));
        tracker.push(&post(&mut dict, &["b", "c"]));
        assert_eq!(tracker.distinct_tags(), 3);
        let seen: Vec<_> = tracker.counts().collect();
        assert_eq!(seen.len(), 3);
    }
}
