//! Tagging stability: adjacent similarity, the Moving-Average (MA) score and the
//! practically-stable rfd (paper Definitions 6–8, Figure 3).
//!
//! * The *adjacent similarity at the j-th post* is `s(F_i(j−1), F_i(j))` — how
//!   much the rfd moved when post `j` arrived.
//! * The *MA score* `m_i(k, ω)` (Definition 7) is the mean of the last `ω − 1`
//!   adjacent similarities, i.e. over posts `k−ω+2 .. k`. It is only defined for
//!   `k ≥ ω`.
//! * The *practically-stable rfd* `φ̂_i(ω, τ)` (Definition 8) is `F_i(k*)` where
//!   `k*` is the smallest `k ≥ ω` with `m_i(k, ω) > τ`. `k*` is what the paper
//!   informally calls the resource's *stable point*.
//!
//! Two implementations are provided:
//!
//! * [`StabilityAnalyzer`] — offline analysis of a full post sequence, used for
//!   dataset preparation (finding resources that reach their stable point) and
//!   for the DP optimal algorithm;
//! * [`MaTracker`] — the incremental structure used by the MU / FP-MU
//!   strategies: pushing one post updates the MA score in `O(d)` where `d` is the
//!   number of distinct tags of the resource, using the sliding-window recurrence
//!   from Appendix C:
//!   `(ω−1)·m_i(k,ω) = (ω−1)·m_i(k−1,ω) − s(F(k−ω), F(k−ω+1)) + s(F(k−1), F(k))`.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::model::Post;
use crate::rfd::{FrequencyTracker, Rfd};
use crate::similarity::{cosine, SimilarityMetric};

/// The `(ω, τ)` parameters of Definitions 7–8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StabilityParams {
    /// Window size ω ≥ 2 of the moving average.
    pub omega: usize,
    /// Stability threshold τ (close to 1).
    pub tau: f64,
}

impl StabilityParams {
    /// Creates a parameter set, panicking when `omega < 2` — the MA score is not
    /// defined for smaller windows (Definition 7 requires ω ≥ 2).
    pub fn new(omega: usize, tau: f64) -> Self {
        assert!(
            omega >= 2,
            "the MA window ω must be at least 2 (got {omega})"
        );
        assert!(
            (0.0..=1.0).contains(&tau),
            "the stability threshold τ must lie in [0, 1] (got {tau})"
        );
        Self { omega, tau }
    }

    /// The strict parameters used by the paper to *prepare* the dataset
    /// (§V-A: ω_s = 20, τ_s = 0.9999).
    pub fn dataset_preparation() -> Self {
        Self::new(20, 0.9999)
    }

    /// The default parameters used by the MU / FP-MU strategies in the paper's
    /// experiments (§V-A: ω = 5).
    pub fn strategy_default() -> Self {
        Self::new(5, 0.99)
    }
}

impl Default for StabilityParams {
    fn default() -> Self {
        Self::strategy_default()
    }
}

/// Result of the offline stability analysis of one post sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityProfile {
    /// Adjacent similarity `s(F(j−1), F(j))` for `j = 1..=k` (index 0 holds j=1).
    pub adjacent_similarity: Vec<f64>,
    /// MA scores `m(k, ω)` for `k = ω..=len` in order; empty when the sequence is
    /// shorter than ω.
    pub ma_scores: Vec<f64>,
    /// The smallest `k` with `m(k, ω) > τ`, if any — the resource's stable point.
    pub stable_point: Option<usize>,
    /// The rfd at the stable point (`φ̂`), if the stable point exists.
    pub stable_rfd: Option<Rfd>,
    /// Parameters the profile was computed with.
    pub params: StabilityParams,
}

impl StabilityProfile {
    /// MA score at post count `k` (`k ≥ ω`), if defined.
    pub fn ma_at(&self, k: usize) -> Option<f64> {
        if k < self.params.omega {
            return None;
        }
        self.ma_scores.get(k - self.params.omega).copied()
    }

    /// True when the sequence reached its stable point.
    pub fn is_stable(&self) -> bool {
        self.stable_point.is_some()
    }
}

/// Offline stability analysis over full post sequences.
#[derive(Debug, Clone)]
pub struct StabilityAnalyzer<M = crate::similarity::CosineSimilarity> {
    params: StabilityParams,
    metric: M,
}

impl StabilityAnalyzer {
    /// Analyzer using the paper's cosine similarity.
    pub fn new(params: StabilityParams) -> Self {
        Self {
            params,
            metric: crate::similarity::CosineSimilarity,
        }
    }
}

impl<M: SimilarityMetric> StabilityAnalyzer<M> {
    /// Analyzer using a custom similarity metric (for ablations).
    pub fn with_metric(params: StabilityParams, metric: M) -> Self {
        Self { params, metric }
    }

    /// The parameters this analyzer was configured with.
    pub fn params(&self) -> StabilityParams {
        self.params
    }

    /// Computes the full stability profile of a post sequence.
    pub fn analyze(&self, posts: &[Post]) -> StabilityProfile {
        let omega = self.params.omega;
        let tau = self.params.tau;

        let mut tracker = FrequencyTracker::new();
        let mut prev_rfd = Rfd::empty();
        let mut adjacent = Vec::with_capacity(posts.len());
        let mut rfd_history: Vec<Rfd> = Vec::with_capacity(posts.len() + 1);
        rfd_history.push(prev_rfd.clone());

        for post in posts {
            tracker.push(post);
            let cur = tracker.rfd();
            adjacent.push(self.metric.similarity(&prev_rfd, &cur));
            rfd_history.push(cur.clone());
            prev_rfd = cur;
        }

        let mut ma_scores = Vec::new();
        let mut stable_point = None;
        if posts.len() >= omega {
            // m(k, ω) averages adjacent similarities at posts k-ω+2 ..= k,
            // i.e. ω−1 values; `adjacent[j-1]` holds the similarity at post j.
            let window = omega - 1;
            let mut window_sum: f64 = adjacent[(omega - window)..omega].iter().sum();
            let first_ma = window_sum / window as f64;
            ma_scores.push(first_ma);
            if first_ma > tau {
                stable_point = Some(omega);
            }
            for k in (omega + 1)..=posts.len() {
                window_sum += adjacent[k - 1];
                window_sum -= adjacent[k - 1 - window];
                let ma = window_sum / window as f64;
                ma_scores.push(ma);
                if stable_point.is_none() && ma > tau {
                    stable_point = Some(k);
                }
            }
        }

        let stable_rfd = stable_point.map(|k| rfd_history[k].clone());

        StabilityProfile {
            adjacent_similarity: adjacent,
            ma_scores,
            stable_point,
            stable_rfd,
            params: self.params,
        }
    }

    /// Returns the practically-stable rfd `φ̂(ω, τ)` of a sequence, if it exists.
    pub fn stable_rfd(&self, posts: &[Post]) -> Option<Rfd> {
        self.analyze(posts).stable_rfd
    }

    /// Returns the stable point (smallest `k ≥ ω` with `m(k, ω) > τ`), if any.
    pub fn stable_point(&self, posts: &[Post]) -> Option<usize> {
        self.analyze(posts).stable_point
    }

    /// Returns the *unstable point*: the largest `k` such that the adjacent
    /// similarity at every post `j ≤ k` stays below `threshold` (the paper uses
    /// 0.95 and observes unstable points around 10 posts). Returns 0 when even
    /// the first post exceeds the threshold.
    pub fn unstable_point(&self, posts: &[Post], threshold: f64) -> usize {
        let profile = self.analyze(posts);
        let mut point = 0;
        for (idx, &sim) in profile.adjacent_similarity.iter().enumerate() {
            if sim < threshold {
                point = idx + 1;
            } else {
                break;
            }
        }
        point
    }
}

/// Incremental MA-score tracker for a single resource, as used by the MU and
/// FP-MU strategies (Algorithm 4 plus the Appendix C optimisation).
///
/// The tracker keeps the current [`FrequencyTracker`], the previous rfd and a
/// queue of the last `ω − 1` adjacent similarities, so each [`MaTracker::push`]
/// costs `O(d)` (d = distinct tags of the resource) instead of `O(ω·d)`.
#[derive(Debug, Clone)]
pub struct MaTracker {
    omega: usize,
    tracker: FrequencyTracker,
    prev_rfd: Rfd,
    /// Last `ω − 1` adjacent similarities (front = oldest).
    window: VecDeque<f64>,
    window_sum: f64,
    posts_seen: usize,
}

impl MaTracker {
    /// Creates a tracker with window size `omega ≥ 2` that has seen no posts.
    pub fn new(omega: usize) -> Self {
        assert!(
            omega >= 2,
            "the MA window ω must be at least 2 (got {omega})"
        );
        Self {
            omega,
            tracker: FrequencyTracker::new(),
            prev_rfd: Rfd::empty(),
            window: VecDeque::with_capacity(omega),
            window_sum: 0.0,
            posts_seen: 0,
        }
    }

    /// Creates a tracker pre-loaded with an initial post prefix.
    pub fn from_posts<'a, I: IntoIterator<Item = &'a Post>>(omega: usize, posts: I) -> Self {
        let mut t = Self::new(omega);
        for p in posts {
            t.push(p);
        }
        t
    }

    /// The window size ω.
    pub fn omega(&self) -> usize {
        self.omega
    }

    /// Number of posts consumed.
    pub fn post_count(&self) -> usize {
        self.posts_seen
    }

    /// The current rfd `F(k)`.
    pub fn rfd(&self) -> Rfd {
        self.tracker.rfd()
    }

    /// Consumes one post and returns the new MA score if it is defined
    /// (i.e. once at least ω posts have been seen).
    pub fn push(&mut self, post: &Post) -> Option<f64> {
        self.tracker.push(post);
        let cur = self.tracker.rfd();
        let adjacent = cosine(&self.prev_rfd, &cur);
        self.prev_rfd = cur;
        self.posts_seen += 1;

        self.window.push_back(adjacent);
        self.window_sum += adjacent;
        // Keep only the last ω − 1 adjacent similarities.
        while self.window.len() > self.omega - 1 {
            if let Some(old) = self.window.pop_front() {
                self.window_sum -= old;
            }
        }
        self.ma_score()
    }

    /// The current MA score `m(k, ω)`, or `None` while `k < ω`.
    pub fn ma_score(&self) -> Option<f64> {
        if self.posts_seen < self.omega {
            None
        } else {
            Some(self.window_sum / (self.omega - 1) as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Post, TagDictionary, TagId};

    fn post(dict: &mut TagDictionary, names: &[&str]) -> Post {
        Post::from_names(dict, names.iter().copied()).unwrap()
    }

    /// A sequence in which every post is identical becomes perfectly stable: all
    /// adjacent similarities after the first equal 1.
    fn constant_sequence(n: usize) -> Vec<Post> {
        (0..n)
            .map(|_| Post::new([TagId(0), TagId(1)]).unwrap())
            .collect()
    }

    #[test]
    #[should_panic(expected = "ω must be at least 2")]
    fn params_reject_omega_one() {
        StabilityParams::new(1, 0.9);
    }

    #[test]
    #[should_panic(expected = "τ must lie in")]
    fn params_reject_bad_tau() {
        StabilityParams::new(5, 1.5);
    }

    #[test]
    fn paper_parameter_presets() {
        let prep = StabilityParams::dataset_preparation();
        assert_eq!(prep.omega, 20);
        assert!((prep.tau - 0.9999).abs() < 1e-12);
        let strat = StabilityParams::strategy_default();
        assert_eq!(strat.omega, 5);
    }

    #[test]
    fn adjacent_similarity_first_post_is_zero() {
        // F(0) is the empty distribution, so s(F(0), F(1)) = 0 by convention.
        let analyzer = StabilityAnalyzer::new(StabilityParams::new(2, 0.9));
        let posts = constant_sequence(3);
        let profile = analyzer.analyze(&posts);
        assert_eq!(profile.adjacent_similarity.len(), 3);
        assert_eq!(profile.adjacent_similarity[0], 0.0);
        assert!((profile.adjacent_similarity[1] - 1.0).abs() < 1e-12);
        assert!((profile.adjacent_similarity[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ma_score_not_defined_below_omega() {
        let analyzer = StabilityAnalyzer::new(StabilityParams::new(5, 0.99));
        let posts = constant_sequence(4);
        let profile = analyzer.analyze(&posts);
        assert!(profile.ma_scores.is_empty());
        assert!(profile.stable_point.is_none());
        assert!(profile.ma_at(4).is_none());
    }

    #[test]
    fn constant_sequence_stabilises_at_omega() {
        let omega = 5;
        let analyzer = StabilityAnalyzer::new(StabilityParams::new(omega, 0.99));
        let posts = constant_sequence(10);
        let profile = analyzer.analyze(&posts);
        // m(5, 5) averages adjacent sims at posts 2..=5, which are all 1.
        assert!((profile.ma_at(5).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(profile.stable_point, Some(omega));
        let stable = profile.stable_rfd.unwrap();
        assert!((stable.get(TagId(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ma_window_excludes_initial_zero_when_omega_small() {
        // With ω = 2 the MA at k=2 is just the adjacent similarity at post 2.
        let analyzer = StabilityAnalyzer::new(StabilityParams::new(2, 0.5));
        let posts = constant_sequence(2);
        let profile = analyzer.analyze(&posts);
        assert!((profile.ma_at(2).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(profile.stable_point, Some(2));
    }

    #[test]
    fn alternating_sequence_has_low_ma() {
        // Posts alternate between two disjoint tags; the rfd keeps swinging and
        // adjacent similarity stays well below 1.
        let mut dict = TagDictionary::new();
        let a = post(&mut dict, &["a"]);
        let b = post(&mut dict, &["b"]);
        let posts: Vec<Post> = (0..40)
            .map(|i| if i % 2 == 0 { a.clone() } else { b.clone() })
            .collect();
        let analyzer = StabilityAnalyzer::new(StabilityParams::new(5, 0.999));
        let profile = analyzer.analyze(&posts);
        // The distribution does converge towards (0.5, 0.5) so similarity rises,
        // but the early window must not be flagged stable at a strict threshold.
        assert!(profile.ma_at(5).unwrap() < 0.999);
    }

    #[test]
    fn stable_point_is_smallest_k() {
        // Construct a sequence that is noisy for a while then constant.
        let mut dict = TagDictionary::new();
        let noisy: Vec<Post> = vec![
            post(&mut dict, &["x"]),
            post(&mut dict, &["y"]),
            post(&mut dict, &["z"]),
            post(&mut dict, &["x", "w"]),
        ];
        let steady = post(&mut dict, &["x", "y"]);
        let mut posts = noisy;
        for _ in 0..30 {
            posts.push(steady.clone());
        }
        let params = StabilityParams::new(4, 0.995);
        let analyzer = StabilityAnalyzer::new(params);
        let profile = analyzer.analyze(&posts);
        let sp = profile.stable_point.expect("sequence should stabilise");
        // Every MA score before the stable point is ≤ τ and the one at it is > τ.
        for k in params.omega..sp {
            assert!(profile.ma_at(k).unwrap() <= params.tau, "k={k}");
        }
        assert!(profile.ma_at(sp).unwrap() > params.tau);
    }

    #[test]
    fn unstable_point_counts_leading_low_similarity() {
        let mut dict = TagDictionary::new();
        let mut posts = vec![
            post(&mut dict, &["a"]),
            post(&mut dict, &["b"]),
            post(&mut dict, &["c"]),
        ];
        let steady = post(&mut dict, &["a", "b", "c"]);
        for _ in 0..20 {
            posts.push(steady.clone());
        }
        let analyzer = StabilityAnalyzer::new(StabilityParams::new(3, 0.99));
        let up = analyzer.unstable_point(&posts, 0.95);
        assert!(up >= 3, "the three noisy posts are unstable, got {up}");
        assert!(up < 10);
    }

    #[test]
    fn incremental_tracker_matches_offline_analyzer() {
        let mut dict = TagDictionary::new();
        let vocab = ["google", "maps", "earth", "software", "travel"];
        // Deterministic pseudo-random-ish sequence mixing the vocabulary.
        let posts: Vec<Post> = (0..60)
            .map(|i| {
                let a = vocab[i % vocab.len()];
                let b = vocab[(i * 7 + 3) % vocab.len()];
                post(&mut dict, &[a, b])
            })
            .collect();
        for omega in [2, 3, 5, 8] {
            let analyzer = StabilityAnalyzer::new(StabilityParams::new(omega, 0.9999));
            let profile = analyzer.analyze(&posts);
            let mut tracker = MaTracker::new(omega);
            for (idx, p) in posts.iter().enumerate() {
                let ma = tracker.push(p);
                let k = idx + 1;
                if k < omega {
                    assert!(ma.is_none(), "ω={omega} k={k}");
                } else {
                    let expected = profile.ma_at(k).unwrap();
                    assert!(
                        (ma.unwrap() - expected).abs() < 1e-9,
                        "ω={omega} k={k}: incremental {} vs offline {}",
                        ma.unwrap(),
                        expected
                    );
                }
            }
        }
    }

    #[test]
    fn ma_tracker_from_posts_equals_pushing() {
        let posts = constant_sequence(8);
        let mut pushed = MaTracker::new(4);
        for p in &posts {
            pushed.push(p);
        }
        let preloaded = MaTracker::from_posts(4, posts.iter());
        assert_eq!(pushed.post_count(), preloaded.post_count());
        assert_eq!(pushed.ma_score(), preloaded.ma_score());
        assert_eq!(pushed.rfd(), preloaded.rfd());
    }

    #[test]
    #[should_panic(expected = "ω must be at least 2")]
    fn ma_tracker_rejects_omega_one() {
        MaTracker::new(1);
    }
}
