//! Property-based tests for the core data structures and metrics.
//!
//! These check the mathematical invariants the rest of the workspace relies on:
//! rfds are probability distributions, similarity metrics are bounded and
//! symmetric, the incremental trackers agree with the offline definitions, and
//! quality is invariant under tag relabelling.

use proptest::prelude::*;

use tagging_core::model::{Post, TagId};
use tagging_core::quality::quality_curve;
use tagging_core::rfd::{rfd_of_prefix, FrequencyTracker, Rfd};
use tagging_core::similarity::{cosine, MetricKind};
use tagging_core::stability::{MaTracker, StabilityAnalyzer, StabilityParams};

/// Strategy: a post over a small tag universe (1–6 distinct tags out of 12).
fn arb_post() -> impl Strategy<Value = Post> {
    proptest::collection::btree_set(0u32..12, 1..=6)
        .prop_map(|tags| Post::new(tags.into_iter().map(TagId)).expect("non-empty"))
}

/// Strategy: a post sequence of 0–60 posts.
fn arb_sequence() -> impl Strategy<Value = Vec<Post>> {
    proptest::collection::vec(arb_post(), 0..60)
}

/// Strategy: raw (tag, count) pairs for building rfds.
fn arb_counts() -> impl Strategy<Value = Vec<(TagId, u64)>> {
    proptest::collection::vec((0u32..20, 0u64..50), 0..15)
        .prop_map(|v| v.into_iter().map(|(t, c)| (TagId(t), c)).collect())
}

proptest! {
    /// A non-empty rfd always sums to 1; the empty rfd sums to 0.
    #[test]
    fn rfd_total_mass_is_one_or_zero(counts in arb_counts()) {
        let rfd = Rfd::from_counts(counts.iter().copied());
        let mass = rfd.total_mass();
        if rfd.is_empty() {
            prop_assert!(mass.abs() < 1e-12);
        } else {
            prop_assert!((mass - 1.0).abs() < 1e-9, "mass = {mass}");
        }
    }

    /// Every component of an rfd lies in (0, 1].
    #[test]
    fn rfd_components_are_probabilities(counts in arb_counts()) {
        let rfd = Rfd::from_counts(counts.iter().copied());
        for (_, w) in rfd.iter() {
            prop_assert!(w > 0.0 && w <= 1.0 + 1e-12);
        }
    }

    /// The incremental frequency tracker agrees with the non-incremental
    /// definition at every prefix length.
    #[test]
    fn tracker_matches_prefix_definition(posts in arb_sequence()) {
        let mut tracker = FrequencyTracker::new();
        for (idx, post) in posts.iter().enumerate() {
            tracker.push(post);
            let k = idx + 1;
            prop_assert_eq!(tracker.rfd(), rfd_of_prefix(&posts, k));
        }
    }

    /// All similarity metrics return values in [0, 1], are symmetric, and give 1
    /// on identical non-empty inputs.
    #[test]
    fn similarity_metrics_bounded_symmetric_reflexive(
        a in arb_counts(),
        b in arb_counts(),
    ) {
        let ra = Rfd::from_counts(a.iter().copied());
        let rb = Rfd::from_counts(b.iter().copied());
        for kind in MetricKind::ALL {
            let metric = kind.build();
            let s_ab = metric.similarity(&ra, &rb);
            let s_ba = metric.similarity(&rb, &ra);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s_ab), "{}: {}", metric.name(), s_ab);
            prop_assert!((s_ab - s_ba).abs() < 1e-9, "{} asymmetric", metric.name());
            if !ra.is_empty() {
                let s_aa = metric.similarity(&ra, &ra);
                prop_assert!((s_aa - 1.0).abs() < 1e-9, "{}: self-sim {}", metric.name(), s_aa);
            }
        }
    }

    /// Cosine similarity is invariant to scaling the raw counts.
    #[test]
    fn cosine_scale_invariant(counts in arb_counts(), factor in 1u64..20) {
        let a = Rfd::from_counts(counts.iter().copied());
        let b = Rfd::from_counts(counts.iter().map(|&(t, c)| (t, c * factor)));
        if !a.is_empty() {
            prop_assert!((cosine(&a, &b) - 1.0).abs() < 1e-9);
        }
    }

    /// The incremental MA tracker agrees with the offline stability analyzer at
    /// every prefix, for several window sizes.
    #[test]
    fn ma_tracker_matches_offline(posts in arb_sequence(), omega in 2usize..8) {
        let analyzer = StabilityAnalyzer::new(StabilityParams::new(omega, 0.9999));
        let profile = analyzer.analyze(&posts);
        let mut tracker = MaTracker::new(omega);
        for (idx, post) in posts.iter().enumerate() {
            let ma = tracker.push(post);
            let k = idx + 1;
            match (ma, profile.ma_at(k)) {
                (Some(inc), Some(off)) => prop_assert!((inc - off).abs() < 1e-9),
                (None, None) => {}
                (inc, off) => prop_assert!(false, "definedness mismatch at k={k}: {inc:?} vs {off:?}"),
            }
        }
    }

    /// The MA score, when defined, lies in [0, 1].
    #[test]
    fn ma_scores_bounded(posts in arb_sequence()) {
        let analyzer = StabilityAnalyzer::new(StabilityParams::strategy_default());
        let profile = analyzer.analyze(&posts);
        for &ma in &profile.ma_scores {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&ma));
        }
    }

    /// The stable point, if reported, really is the smallest k whose MA score
    /// exceeds τ.
    #[test]
    fn stable_point_is_minimal(posts in arb_sequence(), tau in 0.5f64..0.999) {
        let params = StabilityParams::new(4, tau);
        let analyzer = StabilityAnalyzer::new(params);
        let profile = analyzer.analyze(&posts);
        if let Some(sp) = profile.stable_point {
            prop_assert!(profile.ma_at(sp).unwrap() > tau);
            for k in params.omega..sp {
                prop_assert!(profile.ma_at(k).unwrap() <= tau, "earlier k={k} already stable");
            }
        } else {
            for k in params.omega..=posts.len() {
                prop_assert!(profile.ma_at(k).unwrap() <= tau);
            }
        }
    }

    /// A quality curve evaluated against the final rfd of the same sequence ends
    /// at exactly 1 and stays within [0, 1] throughout.
    #[test]
    fn quality_curve_bounded_and_ends_at_one(posts in arb_sequence()) {
        prop_assume!(!posts.is_empty());
        let reference = rfd_of_prefix(&posts, posts.len());
        let curve = quality_curve(&posts, &reference);
        prop_assert_eq!(curve.len(), posts.len() + 1);
        for &q in &curve {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&q));
        }
        prop_assert!((curve[posts.len()] - 1.0).abs() < 1e-9);
    }

    /// Quality is invariant under a relabelling (permutation) of tag ids applied
    /// consistently to both the posts and the reference rfd.
    #[test]
    fn quality_invariant_under_tag_relabelling(posts in arb_sequence(), shift in 1u32..50) {
        prop_assume!(!posts.is_empty());
        let reference = rfd_of_prefix(&posts, posts.len());
        let relabel = |t: TagId| TagId(t.0 + shift);
        let shifted_posts: Vec<Post> = posts
            .iter()
            .map(|p| Post::new(p.iter().map(relabel)).unwrap())
            .collect();
        let shifted_reference = Rfd::from_weights(reference.iter().map(|(t, w)| (relabel(t), w)));
        let original = quality_curve(&posts, &reference);
        let shifted = quality_curve(&shifted_posts, &shifted_reference);
        for (o, s) in original.iter().zip(shifted.iter()) {
            prop_assert!((o - s).abs() < 1e-9);
        }
    }
}
