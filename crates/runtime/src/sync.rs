//! Poison-recovering lock helpers.
//!
//! A [`std::sync::Mutex`] is *poisoned* when a thread panics while holding
//! it. The default `.lock().unwrap()` / `.expect(..)` idiom turns that one
//! panic into a permanent denial of service: every later lock attempt panics
//! too, so a single crashed request handler bricks whatever the mutex guards
//! (the server's session registry, a live session, a tally vector) for the
//! rest of the process.
//!
//! For the data in this workspace that is the wrong trade-off. Handlers
//! validate before they mutate (see `LiveSession::report`), so at every panic
//! boundary the guarded state is either untouched or fully applied; the panic
//! itself is reported through the worker that caught it. [`lock_unpoisoned`]
//! therefore recovers the guard from a poisoned lock instead of propagating
//! the poison, keeping every other session — and the panicked session itself —
//! servable.

use std::sync::{Mutex, MutexGuard};

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// Equivalent to `mutex.lock().unwrap()` on the happy path; on a poisoned
/// mutex it returns the inner guard instead of panicking, so one panicked
/// handler cannot brick the lock for every later request.
pub fn lock_unpoisoned<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn recovers_a_poisoned_mutex() {
        let shared = Arc::new(Mutex::new(7usize));
        let clone = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(
            shared.is_poisoned(),
            "the panic must have poisoned the lock"
        );
        // A plain lock() would now Err forever; the helper recovers.
        assert_eq!(*lock_unpoisoned(&shared), 7);
        *lock_unpoisoned(&shared) = 8;
        assert_eq!(*lock_unpoisoned(&shared), 8);
    }

    #[test]
    fn behaves_like_lock_on_a_healthy_mutex() {
        let m = Mutex::new(vec![1, 2, 3]);
        lock_unpoisoned(&m).push(4);
        assert_eq!(*lock_unpoisoned(&m), vec![1, 2, 3, 4]);
    }
}
