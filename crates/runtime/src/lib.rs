//! # tagging-runtime
//!
//! A small, std-only parallel execution runtime shared by the whole workspace.
//! Every heavy loop in the reproduction — the Figure 6 sweeps, the synthetic
//! corpus generator, the DP quality-table construction — is an *indexed* list
//! of independent work items whose results must come back in input order. This
//! crate provides exactly that and nothing more:
//!
//! * [`Runtime`] — a handle carrying a thread count, resolved from the
//!   `TAGGING_THREADS` environment variable (or a process-wide override set by
//!   the `repro_*` binaries' `--threads` flag) with
//!   [`std::thread::available_parallelism`] as the fallback;
//! * [`Runtime::par_map`] / [`Runtime::par_map_indexed`] — chunked
//!   scoped-thread fan-out over an indexed work list, reassembling results in
//!   input order;
//! * [`SeedSequence`] — derivation of statistically independent per-task RNG
//!   seeds from one root seed, so randomized work (corpus generation) produces
//!   **bit-identical** output at any thread count;
//! * [`WorkerPool`] — a long-lived worker pool for request/response workloads
//!   (the `tagging-server` crate's connection handling), complementing the
//!   per-call scoped threads of `par_map`;
//! * [`Scheduler`] — named periodic background tasks on dedicated threads
//!   with deterministic phase jitter, panic isolation and a clean shutdown
//!   join (the server's telemetry publisher and watchdog tenants);
//! * [`poll`] — readiness plumbing for nonblocking sockets (drain-available
//!   reads, polling writes, adaptive idle backoff) behind the server's
//!   sweep-based accept/read loop;
//! * [`lock_unpoisoned`] — poison-recovering mutex lock, so one panicked
//!   handler cannot brick a shared registry for every later request;
//! * [`FlushPolicy`] — when an append-only log flushes to the OS vs pays for
//!   an `fsync` (the `tagging-persist` WAL's durability knob).
//!
//! ## Determinism contract
//!
//! `par_map*` guarantees that the returned vector equals the one a plain
//! sequential `map` over the same items would produce, for any thread count,
//! **provided** the mapped closure is a pure function of its item (and, for
//! randomized work, of a seed derived from the item index via
//! [`SeedSequence`]). Work distribution (which thread runs which chunk) is
//! intentionally unobservable in the output.
//!
//! ## Why not rayon?
//!
//! The build environment is offline (`vendor/` holds only minimal stand-ins),
//! so the workspace cannot add rayon/tokio. Scoped threads
//! ([`std::thread::scope`]) plus an atomic chunk cursor cover the workspace's
//! coarse-grained, CPU-bound loops with ~100 lines of safe code.
//!
//! ## Quick example
//!
//! ```
//! use tagging_runtime::{Runtime, SeedSequence};
//!
//! let rt = Runtime::new(4);
//! // Results always come back in input order, whatever the thread count.
//! let squares = rt.par_map_indexed(5, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16]);
//!
//! // Independent per-task seeds from one root seed.
//! let seq = SeedSequence::new(42);
//! assert_ne!(seq.derive(0), seq.derive(1));
//! assert_eq!(seq.derive(3), SeedSequence::new(42).derive(3));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

pub mod flush;
pub mod poll;
mod pool;
mod scheduler;
mod seed;
mod sync;

pub use flush::FlushPolicy;
pub use pool::WorkerPool;
pub use scheduler::{Scheduler, TaskStats};
pub use seed::SeedSequence;
pub use sync::lock_unpoisoned;

/// Name of the environment variable that fixes the default thread count.
pub const THREADS_ENV_VAR: &str = "TAGGING_THREADS";

/// Process-wide thread-count override (0 = unset). Set by
/// [`set_default_threads`], read by [`Runtime::from_env`]; lets command-line
/// flags (`--threads N`) take effect everywhere without threading a [`Runtime`]
/// through every call site.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the default thread count used by [`Runtime::from_env`] for the
/// rest of the process. `0` clears the override. Takes precedence over the
/// `TAGGING_THREADS` environment variable.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// Resolves the default thread count: the [`set_default_threads`] override if
/// set, else `TAGGING_THREADS` if set to a positive integer, else
/// [`std::thread::available_parallelism`] (1 when unavailable).
///
/// The environment is consulted once per process — `Runtime::from_env` is
/// called from every parallel entry point, so the parse (and any
/// invalid-value warning) must not repeat on each call.
pub fn default_threads() -> usize {
    let overridden = DEFAULT_THREADS.load(Ordering::Relaxed);
    if overridden > 0 {
        return overridden;
    }
    static ENV_THREADS: OnceLock<usize> = OnceLock::new();
    *ENV_THREADS.get_or_init(|| {
        if let Ok(value) = std::env::var(THREADS_ENV_VAR) {
            if let Ok(n) = value.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
            eprintln!("ignoring invalid {THREADS_ENV_VAR}={value:?} (want a positive integer)");
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Handle to the parallel execution runtime: a thread count plus the chunked
/// `par_map` executor.
///
/// Cheap to copy; construction does not spawn anything. Worker threads are
/// scoped to each `par_map*` call, so a `Runtime` held across the whole
/// program costs nothing while no parallel region is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runtime {
    threads: usize,
}

impl Default for Runtime {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Runtime {
    /// Creates a runtime with an explicit thread count (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Creates a runtime with the process default thread count (see
    /// [`default_threads`]).
    pub fn from_env() -> Self {
        Self::new(default_threads())
    }

    /// A single-threaded runtime: `par_map*` degenerate to plain maps on the
    /// calling thread. Used inside already-parallel regions to avoid
    /// oversubscription.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// The number of worker threads `par_map*` will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when this runtime runs everything on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Maps `f` over `0..len` on the runtime's threads and returns the results
    /// in index order.
    ///
    /// The work list is split into chunks of roughly `len / (threads * 4)`
    /// items which worker threads claim from an atomic cursor, so uneven item
    /// costs (e.g. DP runs at growing budgets) still balance. A panic in `f`
    /// propagates to the caller once all workers have stopped.
    pub fn par_map_indexed<U, F>(&self, len: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        if self.threads == 1 || len <= 1 {
            return (0..len).map(f).collect();
        }

        let chunk_size = len.div_ceil(self.threads * CHUNKS_PER_THREAD).max(1);
        let num_chunks = len.div_ceil(chunk_size);
        let workers = self.threads.min(num_chunks);

        let cursor = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::with_capacity(num_chunks));

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let start = cursor.fetch_add(chunk_size, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + chunk_size).min(len);
                    // Compute the whole chunk before taking the lock so the
                    // mutex only serializes cheap bookkeeping.
                    let results: Vec<U> = (start..end).map(&f).collect();
                    done.lock()
                        .expect("no worker panicked")
                        .push((start, results));
                });
            }
        });

        let mut chunks = done.into_inner().expect("no worker panicked");
        chunks.sort_unstable_by_key(|(start, _)| *start);
        let out: Vec<U> = chunks.into_iter().flat_map(|(_, c)| c).collect();
        assert_eq!(
            out.len(),
            len,
            "every index must produce exactly one result"
        );
        out
    }

    /// Maps `f` over a slice on the runtime's threads; results come back in
    /// input order. See [`Runtime::par_map_indexed`] for the execution model.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.par_map_indexed(items.len(), |i| f(&items[i]))
    }

    /// How many work tiles a blocked kernel should split its input into on
    /// this runtime: `threads × 4`, the same chunks-per-thread factor
    /// `par_map*` uses internally, so uneven tile costs (e.g. the shrinking
    /// rows of a triangular pair loop) can still be rebalanced from the
    /// shared cursor. More tiles means better balance but more per-tile
    /// bookkeeping; the output never depends on the tile count.
    pub fn recommended_tiles(&self) -> usize {
        self.threads * CHUNKS_PER_THREAD
    }
}

/// Chunk-granularity factor: each thread's share of the work list is split
/// into this many chunks so stragglers can be stolen from the shared cursor.
const CHUNKS_PER_THREAD: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_indexed_matches_sequential_map_at_any_thread_count() {
        let expected: Vec<usize> = (0..103).map(|i| i * 7 + 1).collect();
        for threads in [1, 2, 3, 8, 32] {
            let rt = Runtime::new(threads);
            assert_eq!(rt.par_map_indexed(103, |i| i * 7 + 1), expected);
        }
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<String> = (0..50).map(|i| format!("item-{i}")).collect();
        let rt = Runtime::new(8);
        let lengths = rt.par_map(&items, |s| s.len());
        let expected: Vec<usize> = items.iter().map(|s| s.len()).collect();
        assert_eq!(lengths, expected);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let rt = Runtime::new(4);
        assert_eq!(rt.par_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(rt.par_map_indexed(1, |i| i + 10), vec![10]);
        assert_eq!(rt.par_map(&Vec::<u32>::new(), |&x| x), Vec::<u32>::new());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let rt = Runtime::new(64);
        assert_eq!(rt.par_map_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn recommended_tiles_scale_with_threads() {
        assert_eq!(Runtime::sequential().recommended_tiles(), CHUNKS_PER_THREAD);
        assert_eq!(Runtime::new(8).recommended_tiles(), 8 * CHUNKS_PER_THREAD);
    }

    #[test]
    fn thread_count_is_clamped_to_one() {
        assert_eq!(Runtime::new(0).threads(), 1);
        assert!(Runtime::new(0).is_sequential());
        assert!(Runtime::sequential().is_sequential());
        assert!(!Runtime::new(2).is_sequential());
    }

    #[test]
    fn override_takes_precedence() {
        // The only test in this crate that touches the process-global
        // override — keep it that way, or add a mutex: unit tests run
        // concurrently in one process, so a second test reading
        // `default_threads()` would observe the mid-test values.
        set_default_threads(3);
        assert_eq!(default_threads(), 3);
        assert_eq!(Runtime::from_env().threads(), 3);
        set_default_threads(0);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let rt = Runtime::new(4);
        let result = std::panic::catch_unwind(|| {
            rt.par_map_indexed(100, |i| {
                if i == 57 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn uneven_work_is_balanced_and_ordered() {
        // Items with wildly different costs still come back in order.
        let rt = Runtime::new(4);
        let out = rt.par_map_indexed(40, |i| {
            if i % 7 == 0 {
                // A "slow" item.
                let mut acc = 0u64;
                for k in 0..50_000u64 {
                    acc = acc.wrapping_add(k ^ i as u64);
                }
                (i, acc & 1)
            } else {
                (i, 0)
            }
        });
        let indices: Vec<usize> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, (0..40).collect::<Vec<_>>());
    }
}
