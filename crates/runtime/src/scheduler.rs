//! Background scheduler: named periodic tasks on dedicated threads, with
//! deterministic phase jitter, panic isolation, and a clean shutdown join.
//!
//! The server needs a place to hang recurring maintenance work — telemetry
//! window rotation, the JSONL publisher, the event-loop watchdog today;
//! snapshot compaction and index refresh tomorrow. Each tenant is one
//! [`Scheduler::spawn_periodic`] call: a name, a period, and a closure. The
//! scheduler gives every tenant its own thread (tenants never block each
//! other), staggers their first run by a deterministic name-hash phase so
//! same-period tenants do not all fire on the same tick, catches panics at
//! the task boundary (a panicking tenant is counted and keeps its schedule —
//! it does not take the thread down), and joins every thread on
//! [`Scheduler::shutdown`] so process exit never races a half-written
//! publisher line.
//!
//! The scheduler deliberately has **no** dependency on `tagging-telemetry`:
//! per-task run/panic/duration figures are exposed as plain atomics via
//! [`TaskStats`], and callers that want them in `/stats` read the handles
//! they kept from `spawn_periodic`. (Telemetry depends on nothing; runtime
//! depends on nothing; the server composes both.)
//!
//! ```
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//! use std::time::Duration;
//! use tagging_runtime::Scheduler;
//!
//! let mut scheduler = Scheduler::new();
//! let ticks = Arc::new(AtomicU64::new(0));
//! let seen = Arc::clone(&ticks);
//! scheduler.spawn_periodic("demo", Duration::from_millis(1), move || {
//!     seen.fetch_add(1, Ordering::Relaxed);
//! });
//! std::thread::sleep(Duration::from_millis(20));
//! scheduler.shutdown(); // interrupts waits, joins the thread
//! assert!(ticks.load(Ordering::Relaxed) > 0);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::lock_unpoisoned;

/// Per-task observability figures, updated by the task's thread and readable
/// from anywhere (the server folds them into `/stats`). All plain atomics —
/// this crate stays dependency-free.
#[derive(Debug, Default)]
pub struct TaskStats {
    runs: AtomicU64,
    panics: AtomicU64,
    last_run_us: AtomicU64,
    max_run_us: AtomicU64,
}

impl TaskStats {
    /// Completed runs, including ones that panicked.
    pub fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    /// Runs that ended in a caught panic.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Duration of the most recent run, in microseconds.
    pub fn last_run_us(&self) -> u64 {
        self.last_run_us.load(Ordering::Relaxed)
    }

    /// Duration of the slowest run so far, in microseconds.
    pub fn max_run_us(&self) -> u64 {
        self.max_run_us.load(Ordering::Relaxed)
    }

    fn record(&self, elapsed: Duration, panicked: bool) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.runs.fetch_add(1, Ordering::Relaxed);
        if panicked {
            self.panics.fetch_add(1, Ordering::Relaxed);
        }
        self.last_run_us.store(us, Ordering::Relaxed);
        self.max_run_us.fetch_max(us, Ordering::Relaxed);
    }
}

/// Shutdown flag + condvar shared by every task thread: `shutdown` flips the
/// flag and wakes all sleepers, so a tenant mid-wait exits immediately
/// instead of finishing its period.
#[derive(Debug, Default)]
struct Shared {
    stopped: Mutex<bool>,
    wake: Condvar,
}

impl Shared {
    /// Sleep for `timeout` or until shutdown, whichever comes first. Returns
    /// `false` once shutdown has been requested.
    fn sleep(&self, timeout: Duration) -> bool {
        let mut stopped = lock_unpoisoned(&self.stopped);
        let deadline = Instant::now() + timeout;
        while !*stopped {
            let now = Instant::now();
            if now >= deadline {
                return true;
            }
            let (guard, _) = self
                .wake
                .wait_timeout(stopped, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            stopped = guard;
        }
        false
    }
}

/// A handle kept by [`Scheduler::spawn_periodic`] for the shutdown join.
#[derive(Debug)]
struct Task {
    name: String,
    handle: JoinHandle<()>,
}

/// Named periodic tasks on dedicated threads. See the module docs.
#[derive(Debug, Default)]
pub struct Scheduler {
    shared: Arc<Shared>,
    tasks: Vec<Task>,
}

impl Scheduler {
    /// An empty scheduler; spawns nothing until the first tenant arrives.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tenants spawned so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Spawn a tenant: `task` runs every `period` (clamped to ≥ 1ms) on its
    /// own thread until [`Scheduler::shutdown`]. The first run is delayed by
    /// a deterministic phase in `[0, period)` derived from the task name, so
    /// same-period tenants stay staggered run-to-run. A panicking run is
    /// caught, counted in the returned [`TaskStats`], and does not cancel the
    /// schedule.
    pub fn spawn_periodic<F>(&mut self, name: &str, period: Duration, mut task: F) -> Arc<TaskStats>
    where
        F: FnMut() + Send + 'static,
    {
        let period = period.max(Duration::from_millis(1));
        let stats = Arc::new(TaskStats::default());
        let shared = Arc::clone(&self.shared);
        let task_stats = Arc::clone(&stats);
        let phase = jitter_phase(name, period);
        let thread_name = format!("sched-{name}");
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                if !shared.sleep(phase) {
                    return;
                }
                loop {
                    let started = Instant::now();
                    let outcome = catch_unwind(AssertUnwindSafe(&mut task));
                    task_stats.record(started.elapsed(), outcome.is_err());
                    if !shared.sleep(period) {
                        return;
                    }
                }
            })
            .expect("spawning a scheduler thread");
        self.tasks.push(Task {
            name: name.to_string(),
            handle,
        });
        stats
    }

    /// Stop every tenant and join its thread. Tenants mid-sleep wake and exit
    /// immediately; a tenant mid-run finishes the current run first. Safe to
    /// call more than once.
    pub fn shutdown(&mut self) {
        *lock_unpoisoned(&self.shared.stopped) = true;
        self.shared.wake.notify_all();
        for task in self.tasks.drain(..) {
            if task.handle.join().is_err() {
                // Unreachable in practice — runs are wrapped in catch_unwind —
                // but a join failure must not abort the shutdown sweep.
                eprintln!(
                    "scheduler task {:?} thread panicked outside a run",
                    task.name
                );
            }
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Deterministic first-run phase in `[0, period)`: FNV-1a of the task name
/// reduced mod the period. No RNG — the same tenant set always produces the
/// same schedule, which keeps golden traces reproducible.
fn jitter_phase(name: &str, period: Duration) -> Duration {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let period_ms = u64::try_from(period.as_millis()).unwrap_or(u64::MAX).max(1);
    Duration::from_millis(hash % period_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_task_runs_repeatedly_and_joins_on_shutdown() {
        let mut scheduler = Scheduler::new();
        let stats = scheduler.spawn_periodic("ticker", Duration::from_millis(1), || {});
        let deadline = Instant::now() + Duration::from_secs(5);
        while stats.runs() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(stats.runs() >= 3, "task should keep firing");
        scheduler.shutdown();
        let after = stats.runs();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(stats.runs(), after, "no runs after shutdown join");
    }

    #[test]
    fn panicking_task_is_isolated_and_keeps_its_schedule() {
        let mut scheduler = Scheduler::new();
        let stats = scheduler.spawn_periodic("flaky", Duration::from_millis(1), || {
            panic!("tenant bug");
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        while stats.panics() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(stats.panics() >= 2, "panics are caught, schedule continues");
        assert_eq!(stats.runs(), stats.panics());
        scheduler.shutdown();
    }

    #[test]
    fn shutdown_interrupts_a_long_sleep() {
        let mut scheduler = Scheduler::new();
        // One-hour period: without condvar interruption this join would hang.
        scheduler.spawn_periodic("sleepy", Duration::from_secs(3600), || {});
        let started = Instant::now();
        scheduler.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "shutdown must not wait out the period"
        );
        assert_eq!(scheduler.task_count(), 0);
    }

    #[test]
    fn jitter_is_deterministic_and_within_period() {
        let period = Duration::from_millis(1000);
        let a = jitter_phase("publisher", period);
        assert_eq!(a, jitter_phase("publisher", period));
        assert!(a < period);
        // Distinct names should (for these fixed inputs) land on distinct
        // phases — that is the point of the stagger.
        assert_ne!(
            jitter_phase("publisher", period),
            jitter_phase("watchdog", period)
        );
    }

    #[test]
    fn stats_record_durations() {
        let mut scheduler = Scheduler::new();
        let stats = scheduler.spawn_periodic("worker", Duration::from_millis(1), || {
            std::thread::sleep(Duration::from_millis(2));
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        while stats.runs() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        scheduler.shutdown();
        assert!(stats.max_run_us() >= 1_000, "a 2ms run must register ≥ 1ms");
        assert!(stats.last_run_us() > 0);
    }
}
