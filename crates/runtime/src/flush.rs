//! Durability flush policy — when an append-only log should push bytes to
//! the OS and when it should pay for an `fsync`.
//!
//! Every append is always *flushed* (buffered bytes handed to the kernel):
//! that is what makes an acknowledged write survive a `SIGKILL` of the
//! process, because the page cache outlives the process. What a policy
//! decides is the far more expensive question of when to `fsync` (force the
//! kernel to put the bytes on the device), which is what it takes to survive
//! power loss or a kernel crash:
//!
//! * [`FlushPolicy::Always`] — `fsync` after every record; the strongest
//!   guarantee and the slowest write path;
//! * [`FlushPolicy::EveryN`] — `fsync` once per `n` appended records; bounds
//!   the number of acknowledged-but-volatile records to `n`;
//! * [`FlushPolicy::Never`] — never `fsync` on the append path (explicit
//!   sync points such as snapshots and clean shutdown still sync); the
//!   process-crash guarantee only.
//! * [`FlushPolicy::Group`] — group commit: the append path never syncs by
//!   itself; appends wait on a shared fsync ticket issued by a periodic
//!   flusher, so N concurrent writers amortize one device sync. Same
//!   durability as [`FlushPolicy::Always`] from the caller's point of view
//!   (the acknowledgement is only released once the record is on the
//!   device), bounded extra latency of one flusher interval.
//!
//! The policy is a pure decision function plus a parser, so the WAL code
//! stays a mechanical "append, flush, ask the policy" loop. `Group` is the
//! one policy where the *log* owns extra machinery (the ticket gate); the
//! policy itself just reports `should_sync == false` and lets the gate run.

use std::fs::File;
use std::io;

/// When to `fsync` an append-only log file (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// `fsync` after every appended record.
    Always,
    /// `fsync` once every `n` appended records (`n ≥ 1`).
    EveryN(u64),
    /// Never `fsync` on the append path.
    Never,
    /// Group commit: appends block on a shared fsync ticket; a periodic
    /// flusher issues one sync for every waiter that queued since the last.
    Group,
}

impl Default for FlushPolicy {
    /// The default bounds acknowledged-but-volatile records to 256 without
    /// paying a device sync per request.
    fn default() -> Self {
        FlushPolicy::EveryN(256)
    }
}

impl std::fmt::Display for FlushPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlushPolicy::Always => write!(f, "always"),
            FlushPolicy::EveryN(n) => write!(f, "every:{n}"),
            FlushPolicy::Never => write!(f, "never"),
            FlushPolicy::Group => write!(f, "group"),
        }
    }
}

impl FlushPolicy {
    /// Parses `"always"`, `"never"`, `"group"` (alias `"group-commit"`) or
    /// `"every:N"` (N ≥ 1). `every:1` is normalized to
    /// [`FlushPolicy::Always`].
    pub fn parse(text: &str) -> Option<Self> {
        match text.trim() {
            "always" => Some(FlushPolicy::Always),
            "never" => Some(FlushPolicy::Never),
            "group" | "group-commit" => Some(FlushPolicy::Group),
            other => {
                let n = other.strip_prefix("every:")?.parse::<u64>().ok()?;
                if n == 0 {
                    None
                } else if n == 1 {
                    Some(FlushPolicy::Always)
                } else {
                    Some(FlushPolicy::EveryN(n))
                }
            }
        }
    }

    /// True when the log should `fsync` now, given how many records have been
    /// appended since the last sync (including the one just written).
    ///
    /// [`FlushPolicy::Group`] answers `false`: the append path does not sync
    /// inline — the log's group-commit gate decides when the shared sync
    /// happens and when the waiting appends are released.
    pub fn should_sync(&self, appended_since_sync: u64) -> bool {
        match self {
            FlushPolicy::Always => true,
            FlushPolicy::EveryN(n) => appended_since_sync >= *n,
            FlushPolicy::Never | FlushPolicy::Group => false,
        }
    }

    /// Forces file contents to the device (`fdatasync` semantics — file
    /// length changes of an append are data, not just metadata, so
    /// `sync_data` covers the WAL case).
    pub fn sync(file: &File) -> io::Result<()> {
        file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_three_forms() {
        assert_eq!(FlushPolicy::parse("always"), Some(FlushPolicy::Always));
        assert_eq!(FlushPolicy::parse("never"), Some(FlushPolicy::Never));
        assert_eq!(
            FlushPolicy::parse("every:64"),
            Some(FlushPolicy::EveryN(64))
        );
        assert_eq!(
            FlushPolicy::parse(" every:2 "),
            Some(FlushPolicy::EveryN(2))
        );
        assert_eq!(FlushPolicy::parse("group"), Some(FlushPolicy::Group));
        assert_eq!(FlushPolicy::parse("group-commit"), Some(FlushPolicy::Group));
        assert_eq!(FlushPolicy::parse("every:1"), Some(FlushPolicy::Always));
        assert_eq!(FlushPolicy::parse("every:0"), None);
        assert_eq!(FlushPolicy::parse("sometimes"), None);
        assert_eq!(FlushPolicy::parse(""), None);
    }

    #[test]
    fn trimmed_outer_whitespace_is_accepted() {
        assert_eq!(FlushPolicy::parse(" always "), Some(FlushPolicy::Always));
    }

    #[test]
    fn should_sync_matches_the_policy() {
        assert!(FlushPolicy::Always.should_sync(1));
        assert!(FlushPolicy::Always.should_sync(100));
        assert!(!FlushPolicy::Never.should_sync(1_000_000));
        assert!(!FlushPolicy::Group.should_sync(1));
        assert!(!FlushPolicy::Group.should_sync(1_000_000));
        let every = FlushPolicy::EveryN(8);
        assert!(!every.should_sync(7));
        assert!(every.should_sync(8));
        assert!(every.should_sync(9));
    }

    #[test]
    fn display_round_trips_through_parse() {
        for policy in [
            FlushPolicy::Always,
            FlushPolicy::Never,
            FlushPolicy::Group,
            FlushPolicy::EveryN(32),
        ] {
            assert_eq!(FlushPolicy::parse(&policy.to_string()), Some(policy));
        }
    }
}
