//! Readiness plumbing for nonblocking sockets, std-only.
//!
//! The build environment has no `epoll`/`kqueue` binding (no `libc`, and the
//! workspace forbids `unsafe`), so readiness is discovered the only way plain
//! std allows: put every socket in nonblocking mode and *sweep* — attempt a
//! read, treat [`io::ErrorKind::WouldBlock`] as "not ready", and back off when
//! a whole sweep made no progress. The primitives here are the building
//! blocks of that loop; the loop itself (connection bookkeeping, request
//! parsing, dispatch) lives with its protocol in `tagging-server`.
//!
//! * [`read_available`] — drain whatever bytes a nonblocking reader has
//!   buffered right now into a growable buffer, without ever blocking;
//! * [`write_all_polling`] — write a full buffer through a nonblocking
//!   writer, yielding between `WouldBlock`s instead of spinning;
//! * [`IdleBackoff`] — the sweep's adaptive sleep: spin-yield while traffic
//!   is hot, decay to a bounded sleep when everything is idle, so thousands
//!   of idle keep-alive connections cost bounded CPU and *zero* threads.

use std::io::{self, Read, Write};
use std::time::Duration;

/// Bytes asked of the reader per `read` call inside [`read_available`].
const READ_CHUNK: usize = 16 * 1024;

/// What one nonblocking read sweep over a socket observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// `n > 0` fresh bytes were appended to the buffer.
    Read(usize),
    /// The socket is open but has nothing buffered right now.
    WouldBlock,
    /// The peer closed its write half (EOF) — no bytes were appended.
    Closed,
}

/// Drains every byte `reader` can produce *without blocking* into `buf`.
///
/// On a nonblocking socket this loops until the kernel buffer is empty
/// (`WouldBlock`), EOF, or `limit` total buffered bytes — whichever comes
/// first. `Interrupted` reads are retried. Returns how the sweep ended; bytes
/// read before an EOF are kept and reported as [`ReadOutcome::Read`] (the
/// next sweep reports [`ReadOutcome::Closed`]).
///
/// `limit` bounds `buf.len()`: a peer flooding faster than requests are
/// consumed cannot grow the buffer unboundedly. Hitting the limit reports the
/// bytes read so far; the caller decides whether a full buffer without a
/// parseable request is a protocol error.
pub fn read_available<R: Read>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    limit: usize,
) -> io::Result<ReadOutcome> {
    let mut total = 0usize;
    loop {
        if buf.len() >= limit {
            return Ok(if total > 0 {
                ReadOutcome::Read(total)
            } else {
                ReadOutcome::WouldBlock
            });
        }
        let start = buf.len();
        let want = READ_CHUNK.min(limit - start);
        buf.resize(start + want, 0);
        match reader.read(&mut buf[start..]) {
            Ok(0) => {
                buf.truncate(start);
                return Ok(if total > 0 {
                    ReadOutcome::Read(total)
                } else {
                    ReadOutcome::Closed
                });
            }
            Ok(n) => {
                buf.truncate(start + n);
                total += n;
            }
            Err(e) => {
                buf.truncate(start);
                return match e.kind() {
                    io::ErrorKind::WouldBlock => Ok(if total > 0 {
                        ReadOutcome::Read(total)
                    } else {
                        ReadOutcome::WouldBlock
                    }),
                    io::ErrorKind::Interrupted => continue,
                    _ => Err(e),
                };
            }
        }
    }
}

/// Writes all of `bytes` through a possibly-nonblocking writer.
///
/// `WouldBlock` waits out a backoff step and retries (responses here are
/// small JSON bodies, so on loopback this path is almost never taken);
/// `Interrupted` retries immediately; `WriteZero` is surfaced as an error.
pub fn write_all_polling<W: Write>(
    writer: &mut W,
    bytes: &[u8],
    backoff: &mut IdleBackoff,
) -> io::Result<()> {
    let mut written = 0usize;
    while written < bytes.len() {
        match writer.write(&bytes[written..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer stopped accepting bytes",
                ))
            }
            Ok(n) => {
                written += n;
                backoff.reset();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => backoff.wait(),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Maximum sleep one idle wait takes; also the worst-case extra latency a
/// request arriving on a fully idle server observes.
const MAX_IDLE_SLEEP: Duration = Duration::from_millis(2);

/// Sweeps of pure yielding before [`IdleBackoff::wait`] starts sleeping.
const YIELD_SWEEPS: u32 = 16;

/// Adaptive pacing for a readiness sweep loop.
///
/// While work keeps arriving the caller calls [`IdleBackoff::reset`] and the
/// loop runs hot; once sweeps come up empty, [`IdleBackoff::wait`] yields the
/// CPU for the first few calls (cheap reaction to a momentary lull), then
/// sleeps with exponentially growing duration up to [`MAX_IDLE_SLEEP`].
#[derive(Debug, Default)]
pub struct IdleBackoff {
    empty_sweeps: u32,
}

impl IdleBackoff {
    /// A fresh (hot) backoff.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records progress: the next [`IdleBackoff::wait`] reacts instantly.
    pub fn reset(&mut self) {
        self.empty_sweeps = 0;
    }

    /// Waits one step: yield while recently hot, sleep (bounded) when idle.
    pub fn wait(&mut self) {
        self.empty_sweeps = self.empty_sweeps.saturating_add(1);
        if self.empty_sweeps <= YIELD_SWEEPS {
            std::thread::yield_now();
        } else {
            let exponent = (self.empty_sweeps - YIELD_SWEEPS).min(8);
            let step = Duration::from_micros(8 << exponent);
            std::thread::sleep(step.min(MAX_IDLE_SLEEP));
        }
    }

    /// True once waits have decayed to actual sleeps (used by tests and the
    /// cold-connection stagger in the server's sweep loop).
    pub fn is_cold(&self) -> bool {
        self.empty_sweeps > YIELD_SWEEPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader that yields its scripted chunks, then `WouldBlock` forever.
    struct Scripted {
        chunks: Vec<Vec<u8>>,
    }

    impl Read for Scripted {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            match self.chunks.first_mut() {
                None => Err(io::Error::new(io::ErrorKind::WouldBlock, "empty")),
                Some(chunk) => {
                    let n = chunk.len().min(out.len());
                    out[..n].copy_from_slice(&chunk[..n]);
                    chunk.drain(..n);
                    if chunk.is_empty() {
                        self.chunks.remove(0);
                    }
                    Ok(n)
                }
            }
        }
    }

    #[test]
    fn read_available_drains_until_wouldblock() {
        let mut reader = Scripted {
            chunks: vec![b"hello ".to_vec(), b"world".to_vec()],
        };
        let mut buf = Vec::new();
        assert_eq!(
            read_available(&mut reader, &mut buf, 1 << 20).unwrap(),
            ReadOutcome::Read(11)
        );
        assert_eq!(buf, b"hello world");
        assert_eq!(
            read_available(&mut reader, &mut buf, 1 << 20).unwrap(),
            ReadOutcome::WouldBlock
        );
        assert_eq!(buf, b"hello world", "an empty sweep appends nothing");
    }

    #[test]
    fn read_available_reports_eof_once_drained() {
        let mut reader = Cursor::new(b"bye".to_vec());
        let mut buf = Vec::new();
        assert_eq!(
            read_available(&mut reader, &mut buf, 1 << 20).unwrap(),
            ReadOutcome::Read(3)
        );
        assert_eq!(
            read_available(&mut reader, &mut buf, 1 << 20).unwrap(),
            ReadOutcome::Closed
        );
        assert_eq!(buf, b"bye");
    }

    #[test]
    fn read_available_respects_the_buffer_limit() {
        let mut reader = Cursor::new(vec![7u8; 100]);
        let mut buf = Vec::new();
        assert_eq!(
            read_available(&mut reader, &mut buf, 32).unwrap(),
            ReadOutcome::Read(32)
        );
        assert_eq!(buf.len(), 32);
        // A full buffer reads nothing further even though bytes remain.
        assert_eq!(
            read_available(&mut reader, &mut buf, 32).unwrap(),
            ReadOutcome::WouldBlock
        );
        assert_eq!(buf.len(), 32);
    }

    #[test]
    fn write_all_polling_writes_through_partial_writers() {
        /// Accepts at most 3 bytes per call, `WouldBlock`ing every other call.
        struct Choppy {
            out: Vec<u8>,
            calls: usize,
        }
        impl Write for Choppy {
            fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
                self.calls += 1;
                if self.calls.is_multiple_of(2) {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "later"));
                }
                let n = bytes.len().min(3);
                self.out.extend_from_slice(&bytes[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut writer = Choppy {
            out: Vec::new(),
            calls: 0,
        };
        let mut backoff = IdleBackoff::new();
        write_all_polling(&mut writer, b"0123456789", &mut backoff).unwrap();
        assert_eq!(writer.out, b"0123456789");
    }

    #[test]
    fn backoff_goes_cold_and_resets_hot() {
        let mut backoff = IdleBackoff::new();
        assert!(!backoff.is_cold());
        for _ in 0..=YIELD_SWEEPS {
            backoff.wait();
        }
        assert!(backoff.is_cold());
        backoff.reset();
        assert!(!backoff.is_cold());
    }
}
