//! Derivation of independent per-task RNG seeds from one root seed.
//!
//! Parallel randomized work cannot share one sequential RNG stream: the order
//! in which threads would consume it is nondeterministic, and splitting a
//! stream "every k draws" couples tasks to each other's draw counts. The
//! standard fix (mirroring NumPy's `SeedSequence` / JAX's key splitting) is to
//! give every task its own generator seeded by a *derived* seed: a strong hash
//! of `(root seed, task index)`. Derivation is pure, so the same root seed
//! yields the same per-task streams at any thread count — this is what makes
//! the corpus generator bit-identical from 1 to N threads.

/// Derives statistically independent 64-bit seeds from one root seed.
///
/// Two layers of the SplitMix64 finalizer separate the root and the index
/// before combining them, so consecutive roots and consecutive indices both
/// map to unrelated outputs. Not cryptographic — collisions are as likely as
/// for any 64-bit hash — but far stronger than the `seed + index` scheme that
/// correlates neighbouring streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    root: u64,
}

/// Weyl-sequence increment (2^64 / φ), the standard SplitMix64 gamma.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The 64-bit variant-13 mix finalizer (also used by SplitMix64): a bijection
/// on `u64` with full avalanche.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedSequence {
    /// Creates a sequence rooted at `root`. Equal roots give equal sequences.
    pub fn new(root: u64) -> Self {
        Self { root }
    }

    /// The root seed the sequence was created from.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derives the seed of task `index`. Pure: depends only on
    /// `(root, index)`, never on derivation order or thread count.
    pub fn derive(&self, index: u64) -> u64 {
        // Hash the index through a Weyl sequence first so that (root, i) and
        // (root + 1, i - 1) style collisions of a plain xor cannot happen.
        let h = mix(index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA));
        mix(self.root ^ h)
    }

    /// Derives a whole child sequence for task `index` — for nested
    /// parallelism (a parallel task that itself spawns seeded subtasks).
    pub fn child(&self, index: u64) -> SeedSequence {
        SeedSequence::new(self.derive(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_pure_and_order_independent() {
        let seq = SeedSequence::new(20130408);
        let forward: Vec<u64> = (0..100).map(|i| seq.derive(i)).collect();
        let backward: Vec<u64> = (0..100).rev().map(|i| seq.derive(i)).collect();
        assert_eq!(
            forward,
            backward.into_iter().rev().collect::<Vec<_>>(),
            "derive must not depend on call order"
        );
        assert_eq!(seq.root(), 20130408);
    }

    #[test]
    fn distinct_indices_and_roots_give_distinct_seeds() {
        let seq = SeedSequence::new(7);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(seq.derive(i)), "collision at index {i}");
        }
        // Nearby roots must not produce overlapping streams.
        let other = SeedSequence::new(8);
        let head: std::collections::HashSet<u64> = (0..1_000).map(|i| seq.derive(i)).collect();
        assert!((0..1_000).all(|i| !head.contains(&other.derive(i))));
    }

    #[test]
    fn derived_seeds_look_unbiased() {
        // Crude avalanche check: each output bit flips for roughly half the
        // consecutive-index pairs.
        let seq = SeedSequence::new(123);
        for bit in 0..64 {
            let flips = (0..2_000u64)
                .filter(|&i| (seq.derive(i) ^ seq.derive(i + 1)) >> bit & 1 == 1)
                .count();
            assert!(
                (700..1_300).contains(&flips),
                "bit {bit} flipped {flips}/2000 times"
            );
        }
    }

    #[test]
    fn child_sequences_are_independent() {
        let seq = SeedSequence::new(99);
        let a = seq.child(0);
        let b = seq.child(1);
        assert_ne!(a, b);
        assert_ne!(a.derive(0), b.derive(0));
        // A child is reproducible from its parent.
        assert_eq!(seq.child(0).derive(5), a.derive(5));
    }
}
