//! A long-lived worker pool for request/response workloads.
//!
//! [`Runtime::par_map`](crate::Runtime::par_map) spawns scoped threads per
//! call, which fits batch computations but not a server that must hand each
//! accepted connection to a worker and keep going. [`WorkerPool`] is the
//! complementary primitive: `threads` workers started once, consuming boxed
//! jobs from a shared queue until the pool is dropped.
//!
//! Still std-only: an [`std::sync::mpsc`] channel behind a mutex-guarded
//! receiver is the entire scheduler. Dropping the pool closes the channel and
//! joins every worker, so already-queued jobs finish before shutdown
//! completes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::sync::lock_unpoisoned;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing queued jobs in FIFO order.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    // Jobs submitted but not yet finished (queued + running). Kept as a plain
    // atomic so observers (the server's pool-depth gauge) can sample the
    // pool's saturation without any locking.
    pending: Arc<AtomicUsize>,
}

impl WorkerPool {
    /// Starts a pool with `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("tagging-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while popping, not while running
                        // the job, so workers drain the queue concurrently.
                        let job = {
                            // Poison-recovering: jobs run outside the lock, but
                            // a panic between recv() and the guard drop must
                            // not take the whole pool's queue down.
                            let guard = lock_unpoisoned(&receiver);
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            // All senders dropped: the pool is shutting down.
                            Err(_) => break,
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
            pending: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Number of jobs submitted but not yet finished (queued plus currently
    /// running). A sustained value well above [`threads`](Self::threads)
    /// means the pool is saturated and work is waiting in the queue.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }

    /// Queues a job; some idle worker will run it. Panics if called after the
    /// pool started shutting down (impossible through the public API, since
    /// shutdown happens in `drop`).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        let pending = Arc::clone(&self.pending);
        pending.fetch_add(1, Ordering::Relaxed);
        self.sender
            .as_ref()
            .expect("pool is shutting down")
            .send(Box::new(move || {
                // Count down even if the job panics: a poisoned-but-counted
                // slot would otherwise make the depth gauge drift upward
                // forever.
                let _guard = PendingGuard(pending);
                job();
            }))
            .expect("all workers exited early");
    }
}

struct PendingGuard(Arc<AtomicUsize>);

impl Drop for PendingGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel makes every worker's recv() fail once the queue
        // is drained; joining then waits for in-flight jobs to finish.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            // A worker that panicked already took its job down with it; there
            // is nothing further to unwind here.
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel as result_channel;

    #[test]
    fn executes_every_queued_job() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // joins: all queued jobs must have run
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn jobs_run_concurrently_across_workers() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = result_channel();
        // Two jobs that can only both finish if they run on distinct workers:
        // each waits for the other's first message.
        let (a_tx, a_rx) = result_channel();
        let (b_tx, b_rx) = result_channel();
        let done = tx.clone();
        pool.execute(move || {
            b_tx.send(()).unwrap();
            a_rx.recv().unwrap();
            done.send("a").unwrap();
        });
        pool.execute(move || {
            a_tx.send(()).unwrap();
            b_rx.recv().unwrap();
            tx.send("b").unwrap();
        });
        let mut finished: Vec<&str> = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        finished.sort_unstable();
        assert_eq!(finished, vec!["a", "b"]);
    }

    #[test]
    fn pending_tracks_queue_depth() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.pending(), 0);
        let (gate_tx, gate_rx) = result_channel::<()>();
        let (started_tx, started_rx) = result_channel::<()>();
        pool.execute(move || {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        });
        started_rx.recv().unwrap();
        // One job running; queue three more behind it on the single worker.
        for _ in 0..3 {
            pool.execute(|| {});
        }
        assert_eq!(pool.pending(), 4);
        gate_tx.send(()).unwrap();
        drop(pool); // joins: everything drains
    }

    #[test]
    fn pending_returns_to_zero_after_drain() {
        let pool = WorkerPool::new(2);
        for _ in 0..50 {
            pool.execute(|| {});
        }
        // Spin briefly: jobs are trivial, the queue drains in microseconds.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while pool.pending() != 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.execute(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
