//! End-to-end determinism contract of the runtime: a seeded parallel workload
//! produces bit-identical results at every thread count, and matches the plain
//! sequential computation.

use tagging_runtime::{Runtime, SeedSequence};

/// A miniature stand-in for the corpus generator's per-task work: a small
/// deterministic PRNG walk driven by a derived seed.
fn seeded_task(seed: u64, steps: usize) -> Vec<u64> {
    let mut state = seed;
    (0..steps)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        })
        .collect()
}

#[test]
fn seeded_parallel_workload_is_bit_identical_across_thread_counts() {
    let seq = SeedSequence::new(20130408);
    let run = |threads: usize| {
        Runtime::new(threads).par_map_indexed(97, |i| seeded_task(seq.derive(i as u64), 11 + i % 7))
    };

    let sequential: Vec<Vec<u64>> = (0..97)
        .map(|i| seeded_task(seq.derive(i as u64), 11 + i % 7))
        .collect();
    for threads in [1, 2, 3, 8] {
        assert_eq!(run(threads), sequential, "threads = {threads}");
    }
}

#[test]
fn nested_child_sequences_stay_deterministic() {
    let root = SeedSequence::new(5);
    let rt = Runtime::new(4);
    // Outer parallel loop; each task derives a child sequence and runs an
    // inner (sequential) seeded loop — the generator's exact shape.
    let run = || {
        rt.par_map_indexed(20, |i| {
            let child = root.child(i as u64);
            (0..5).map(|j| child.derive(j)).collect::<Vec<u64>>()
        })
    };
    assert_eq!(run(), run());
    assert_eq!(
        run()[13],
        (0..5)
            .map(|j| root.child(13).derive(j))
            .collect::<Vec<u64>>()
    );
}
