//! # tagging-repro
//!
//! Workspace-root package for the reproduction of *"On Incentive-based
//! Tagging"* (Yang, Cheng, Mo, Kao, Cheung — ICDE 2013).
//!
//! This crate contains no logic of its own: it exists to host the end-to-end
//! integration tests in `tests/` and the runnable examples in `examples/`,
//! which exercise the whole workspace through the public APIs of the six
//! member crates. See those crates for the actual implementation:
//!
//! * [`tagging_core`] — data model, rfds, stability and quality metrics;
//! * [`tagging_strategies`] — the incentive allocation strategies and DP optimum;
//! * [`delicious_sim`] — the synthetic del.icio.us-style corpus generator;
//! * [`tagging_sim`] — the experiment engine;
//! * [`tagging_analysis`] — the §V-C similarity case studies;
//! * [`tagging_bench`] — figure/table reproduction drivers and benches.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use delicious_sim;
pub use tagging_analysis;
pub use tagging_bench;
pub use tagging_core;
pub use tagging_sim;
pub use tagging_strategies;
